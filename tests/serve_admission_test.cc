#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/async.h"
#include "src/serve/cost_model.h"
#include "src/serve/executor.h"
#include "src/serve/mpmc_queue.h"
#include "src/serve/request.h"
#include "src/serve/shard.h"
#include "tests/test_util.h"

/// Tier-1 coverage of predictive admission control and slack-ordered
/// scheduling (serve/cost_model.h, serve/executor.h):
///
///  * the cost model itself — log2 bucketing, the BENCH-shaped priors, EWMA
///    learning with exact arithmetic checks, snapshot immutability/caching,
///    and the conservative DecideAdmission rule;
///  * admission determinism — decisions against a fixed snapshot are
///    bit-identical across thread counts and numeric backends;
///  * the executor integration — proactive degradation that SKIPS the exact
///    solve (the headline acceptance criterion), reactive conversions keeping
///    proactive=false, shedding hopeless requests at submit, slack ordering
///    (plain EDF and predicted-cost-adjusted), the submit-time budget fix,
///    and no-deadline bit-identity with a model installed;
///  * MpmcQueue capacity edge cases (0/1 → 2, oversize rejection).
///
/// Timing-sensitive scenarios use the shared gate-engine harness
/// (tests/test_util.h) so a parked worker — not a sleep — defines "busy".

namespace phom {
namespace {

using serve::AdmissionAction;
using serve::BatchExecutor;
using serve::CostModel;
using serve::CostModelSnapshot;
using serve::CostPrediction;
using serve::DecideAdmission;
using serve::ExecutorOptions;
using serve::ExecutorStats;
using serve::MpmcQueue;
using serve::PriorComponentCost;
using serve::RequestClock;
using serve::RequestStats;
using serve::SolveRequest;
using serve::SolveTicket;
using serve::UncertainEdgeBucket;
using test_util::GateOpener;
using test_util::HardCellEnumerationCase;
using test_util::MixedServeInstance;
using test_util::MixedServeQueries;
using test_util::TestGate;

constexpr char kGateEngine[] = "admission-test-gate";
constexpr char kHeavyEngine[] = "admission-slack-heavy";
constexpr char kLightEngine[] = "admission-slack-light";

void ExpectTimelineMonotonic(const RequestStats& stats,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_LE(stats.enqueued, stats.started);
  EXPECT_LE(stats.started, stats.finished);
}

void ExpectResultsBitIdentical(const Result<SolveResult>& serial,
                               const Result<SolveResult>& async,
                               const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(serial.ok(), async.ok());
  if (!serial.ok()) {
    EXPECT_EQ(serial.status().code(), async.status().code());
    EXPECT_EQ(serial.status().message(), async.status().message());
    return;
  }
  EXPECT_EQ(serial->probability, async->probability);
  EXPECT_EQ(std::bit_cast<uint64_t>(serial->probability_double),
            std::bit_cast<uint64_t>(async->probability_double));
  EXPECT_EQ(serial->stats.engine, async->stats.engine);
  EXPECT_EQ(serial->stats.components, async->stats.components);
  EXPECT_EQ(serial->stats.worlds, async->stats.worlds);
}

/// Trains the model's cell for a WHOLE-problem dispatch of `prepared` under
/// `options` — resolving the engine exactly as PredictSolveCost does, so the
/// primed cell is the one admission will read.
void PrimeWholeProblemCell(CostModel* model, const PreparedProblem& prepared,
                           const SolveOptions& options,
                           std::chrono::nanoseconds duration) {
  bool forced = false;
  Result<const Engine*> engine = SelectEngineForProblem(
      EngineRegistry::Global(), prepared, options, &forced);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_NE(*engine, nullptr);
  model->RecordComponent((*engine)->name(),
                         prepared.analysis.instance_class.finest,
                         prepared.instance().NumUncertainEdges(), duration);
}

// ---------------------------------------------------------------------------
// Cost model unit tests: buckets, priors, EWMA arithmetic, snapshots.
// ---------------------------------------------------------------------------

TEST(CostModel, UncertainEdgeBucketsAreLog2) {
  EXPECT_EQ(UncertainEdgeBucket(0), 0u);
  EXPECT_EQ(UncertainEdgeBucket(1), 1u);
  EXPECT_EQ(UncertainEdgeBucket(2), 2u);
  EXPECT_EQ(UncertainEdgeBucket(3), 2u);
  EXPECT_EQ(UncertainEdgeBucket(4), 3u);
  EXPECT_EQ(UncertainEdgeBucket(7), 3u);
  EXPECT_EQ(UncertainEdgeBucket(8), 4u);
  EXPECT_EQ(UncertainEdgeBucket(1023), 10u);
  EXPECT_EQ(UncertainEdgeBucket(1024), 11u);
}

TEST(CostModel, PriorsSeparateHardFromTractableCells) {
  using std::chrono::nanoseconds;
  // Enumeration engines are exponential regardless of the component class.
  EXPECT_EQ(PriorComponentCost("fallback", GraphClass::kTwoWayPath, 10),
            nanoseconds(int64_t{2000} << 10));
  EXPECT_EQ(PriorComponentCost("match-lineage", GraphClass::kOneWayPath, 3),
            nanoseconds(int64_t{2000} << 3));
  // Hard classes are exponential regardless of the engine.
  EXPECT_EQ(PriorComponentCost("per-component", GraphClass::kConnected, 4),
            nanoseconds(int64_t{2000} << 4));
  // Tractable cells are linear in the uncertain edge count.
  EXPECT_EQ(PriorComponentCost("connected-on-2wp", GraphClass::kTwoWayPath, 10),
            nanoseconds(40'000));
  EXPECT_EQ(PriorComponentCost("path-on-dwt", GraphClass::kDownwardTree, 0),
            nanoseconds(20'000));
  // The exponential shift caps at 40 (no int64 overflow at huge edge counts).
  EXPECT_EQ(PriorComponentCost("fallback", GraphClass::kGeneral, 64),
            nanoseconds(int64_t{2000} << 40));
  EXPECT_EQ(PriorComponentCost("fallback", GraphClass::kGeneral, 4096),
            PriorComponentCost("fallback", GraphClass::kGeneral, 40));
}

TEST(CostModel, UnlearnedCellsPredictFromPriorWithWideBand) {
  CostModel model;
  std::shared_ptr<const CostModelSnapshot> snapshot = model.Snapshot();
  EXPECT_EQ(snapshot->num_cells(), 0u);
  CostPrediction p =
      snapshot->PredictComponent("fallback", GraphClass::kConnected, 10);
  EXPECT_TRUE(p.from_prior);
  EXPECT_EQ(p.expected, std::chrono::nanoseconds(2'048'000));
  EXPECT_EQ(p.optimistic, std::chrono::nanoseconds(256'000));    // prior / 8
  EXPECT_EQ(p.pessimistic, std::chrono::nanoseconds(16'384'000));  // prior * 8
  EXPECT_LE(p.optimistic, p.expected);
  EXPECT_LE(p.expected, p.pessimistic);
}

TEST(CostModel, EwmaLearnsWithExactArithmeticAndSnapshotsAreImmutable) {
  CostModel model;
  model.RecordComponent("e", GraphClass::kTwoWayPath, 5,
                        std::chrono::nanoseconds(1000));
  std::shared_ptr<const CostModelSnapshot> first = model.Snapshot();
  ASSERT_EQ(first->num_cells(), 1u);
  {
    // First observation: mean = x, dev = x/2 (deliberately wide), band
    // mean ± 2·dev = [0, 2000].
    CostPrediction p = first->PredictComponent("e", GraphClass::kTwoWayPath, 5);
    EXPECT_FALSE(p.from_prior);
    EXPECT_EQ(p.expected.count(), 1000);
    EXPECT_EQ(p.optimistic.count(), 0);
    EXPECT_EQ(p.pessimistic.count(), 2000);
    // Edge counts 4..7 share bucket 3, so they read the same cell.
    CostPrediction same_bucket =
        first->PredictComponent("e", GraphClass::kTwoWayPath, 7);
    EXPECT_EQ(same_bucket.expected, p.expected);
    // Bucket 2 (counts 2-3) is a different, unlearned cell.
    EXPECT_TRUE(
        first->PredictComponent("e", GraphClass::kTwoWayPath, 3).from_prior);
  }

  // EWMA step (alpha = 0.25): mean 1000 → 1250, dev 500 → 625. All values
  // are exactly representable, so the assertions are equalities.
  model.RecordComponent("e", GraphClass::kTwoWayPath, 5,
                        std::chrono::nanoseconds(2000));
  std::shared_ptr<const CostModelSnapshot> second = model.Snapshot();
  {
    CostPrediction p =
        second->PredictComponent("e", GraphClass::kTwoWayPath, 5);
    EXPECT_EQ(p.expected.count(), 1250);
    EXPECT_EQ(p.optimistic.count(), 0);  // 1250 - 2*625 = 0
    EXPECT_EQ(p.pessimistic.count(), 2500);
  }
  // A zero-error observation shrinks the deviation: dev 625 → 468.75.
  model.RecordComponent("e", GraphClass::kTwoWayPath, 5,
                        std::chrono::nanoseconds(1250));
  std::shared_ptr<const CostModelSnapshot> third = model.Snapshot();
  {
    CostPrediction p = third->PredictComponent("e", GraphClass::kTwoWayPath, 5);
    EXPECT_EQ(p.expected.count(), 1250);
    EXPECT_EQ(p.optimistic.count(), 312);    // 1250 - 937.5, truncated
    EXPECT_EQ(p.pessimistic.count(), 2187);  // 1250 + 937.5, truncated
  }

  // Snapshot isolation: the snapshots taken earlier still answer from their
  // own frozen cells, and versions are strictly increasing.
  EXPECT_EQ(
      first->PredictComponent("e", GraphClass::kTwoWayPath, 5).expected.count(),
      1000);
  EXPECT_EQ(second->PredictComponent("e", GraphClass::kTwoWayPath, 5)
                .expected.count(),
            1250);
  EXPECT_LT(first->version(), second->version());
  EXPECT_LT(second->version(), third->version());
}

TEST(CostModel, SnapshotIsCachedUntilTheNextUpdate) {
  CostModel model;
  model.RecordComponent("e", GraphClass::kPolytree, 2,
                        std::chrono::nanoseconds(500));
  std::shared_ptr<const CostModelSnapshot> a = model.Snapshot();
  std::shared_ptr<const CostModelSnapshot> b = model.Snapshot();
  EXPECT_EQ(a.get(), b.get()) << "no update between snapshots: cached copy";
  model.RecordComponent("e", GraphClass::kPolytree, 2,
                        std::chrono::nanoseconds(700));
  std::shared_ptr<const CostModelSnapshot> c = model.Snapshot();
  EXPECT_NE(a.get(), c.get());
  EXPECT_GT(c->version(), a->version());
}

TEST(CostModel, SnapshotJsonRoundTripsByteIdentically) {
  CostModel model;
  model.RecordComponent("fallback", GraphClass::kGeneral, 20,
                        std::chrono::nanoseconds(2'300'000'000));
  model.RecordComponent("fallback", GraphClass::kGeneral, 20,
                        std::chrono::nanoseconds(2'100'000'000));
  model.RecordComponent("connected-on-2wp", GraphClass::kTwoWayPath, 7,
                        std::chrono::nanoseconds(41'337));
  model.RecordComponent("path-on-dwt", GraphClass::kDownwardTree, 0,
                        std::chrono::nanoseconds(19'001));

  const std::string json = model.ExportSnapshotJson();
  CostModel restored;
  Result<size_t> imported = restored.ImportSnapshotJson(json);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(*imported, 3u);
  // Exact round trip: re-export is byte-identical (sorted cells, %.17g
  // latencies), and predictions agree bit for bit.
  EXPECT_EQ(restored.ExportSnapshotJson(), json);
  std::shared_ptr<const CostModelSnapshot> a = model.Snapshot();
  std::shared_ptr<const CostModelSnapshot> b = restored.Snapshot();
  EXPECT_EQ(b->num_cells(), 3u);
  for (size_t edges : {0, 7, 20, 1000}) {
    CostPrediction pa = a->PredictComponent("fallback", GraphClass::kGeneral,
                                            edges);
    CostPrediction pb = b->PredictComponent("fallback", GraphClass::kGeneral,
                                            edges);
    EXPECT_EQ(pa.expected, pb.expected) << edges;
    EXPECT_EQ(pa.optimistic, pb.optimistic) << edges;
    EXPECT_EQ(pa.pessimistic, pb.pessimistic) << edges;
    EXPECT_EQ(pa.from_prior, pb.from_prior) << edges;
  }

  // Malformed inputs are rejected whole: nothing installs.
  CostModel untouched;
  EXPECT_FALSE(untouched.ImportSnapshotJson("").ok());
  EXPECT_FALSE(untouched.ImportSnapshotJson("{}").ok());
  EXPECT_FALSE(untouched.ImportSnapshotJson("{\"schema\":2,\"cells\":[]}").ok());
  EXPECT_FALSE(untouched
                   .ImportSnapshotJson(
                       "{\"schema\":1,\"cells\":[{\"engine\":\"e\"}]}")
                   .ok());
  EXPECT_FALSE(untouched.ImportSnapshotJson(json, /*decay_toward_prior=*/1.5)
                   .ok());
  EXPECT_EQ(untouched.Snapshot()->num_cells(), 0u);

  // The empty model round-trips too.
  CostModel empty;
  Result<size_t> none = CostModel().ImportSnapshotJson(
      empty.ExportSnapshotJson());
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
}

TEST(CostModel, ImportDecayBlendsTowardThePrior) {
  CostModel model;
  // One well-observed cell, far from its prior.
  for (int i = 0; i < 8; ++i) {
    model.RecordComponent("connected-on-2wp", GraphClass::kTwoWayPath, 4,
                          std::chrono::nanoseconds(1'000'000));
  }
  const std::string json = model.ExportSnapshotJson();
  // Bucket 3 covers counts 4–7; its prior is evaluated at the smallest
  // member, 20 µs + 2 µs · 4 = 28 µs.
  const double prior_ns = 28'000.0;

  CostModel verbatim;
  ASSERT_TRUE(verbatim.ImportSnapshotJson(json, 0.0).ok());
  CostModel half;
  ASSERT_TRUE(half.ImportSnapshotJson(json, 0.5).ok());
  CostModel reset;
  ASSERT_TRUE(reset.ImportSnapshotJson(json, 1.0).ok());

  const auto expected_of = [](const CostModel& m) {
    return static_cast<double>(m.Snapshot()
                                   ->PredictComponent("connected-on-2wp",
                                                      GraphClass::kTwoWayPath,
                                                      4)
                                   .expected.count());
  };
  const double mean = expected_of(verbatim);
  EXPECT_EQ(mean, 1'000'000.0) << "decay 0 restores verbatim";
  EXPECT_EQ(expected_of(half), 0.5 * mean + 0.5 * prior_ns);
  EXPECT_EQ(expected_of(reset), prior_ns)
      << "decay 1 keeps the key but resets its state to the prior";
  // Decayed cells are still LEARNED cells (count >= 1): predictions come
  // from the blended EWMA state, not the prior band.
  EXPECT_FALSE(reset.Snapshot()
                   ->PredictComponent("connected-on-2wp",
                                      GraphClass::kTwoWayPath, 4)
                   .from_prior);
}

TEST(CostModel, ExecutorWarmStartImportsAtConstruction) {
  // Learn a cell in one "run", persist it, and hand the bytes to a fresh
  // executor: its model must predict from the learned cell before any
  // request completes.
  CostModel previous_run;
  previous_run.RecordComponent("fallback", GraphClass::kGeneral, 10,
                               std::chrono::nanoseconds(5'000'000));
  const std::string json = previous_run.ExportSnapshotJson();

  auto model = std::make_shared<CostModel>();
  ExecutorOptions options;
  options.threads = 1;
  options.cost_model = model;
  options.cost_model_warm_start_json = json;
  BatchExecutor executor(options);
  EXPECT_EQ(model->Snapshot()->num_cells(), 1u);
  EXPECT_FALSE(model->Snapshot()
                   ->PredictComponent("fallback", GraphClass::kGeneral, 10)
                   .from_prior);
  // Without a model the field is inert.
  ExecutorOptions no_model;
  no_model.threads = 1;
  no_model.cost_model_warm_start_json = json;
  BatchExecutor inert(no_model);
  EXPECT_EQ(inert.stats().submitted, 0u);
}

TEST(CostModel, RecordSolveSkipsDegradedAndImmediateResults) {
  Rng rng(41);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  CostModel model;

  PreparedProblem prepared = session.Prepare(MakeLabeledPath({0}));
  SolveResult degraded;
  degraded.stats.engine = "monte-carlo";
  degraded.stats.duration = std::chrono::milliseconds(5);
  degraded.degrade.degraded = true;
  model.RecordSolve(prepared, degraded);
  EXPECT_EQ(model.Snapshot()->num_cells(), 0u)
      << "degraded estimates must not train the exact-latency model";

  SolveResult engineless;  // immediate answers carry no engine
  model.RecordSolve(prepared, engineless);
  EXPECT_EQ(model.Snapshot()->num_cells(), 0u);

  SolveResult clean;
  clean.stats.engine = "fallback";
  clean.stats.duration = std::chrono::milliseconds(1);
  model.RecordSolve(prepared, clean);
  EXPECT_EQ(model.Snapshot()->num_cells(), 1u);
}

TEST(CostModel, PredictSolveCostMirrorsTheDispatchShape) {
  Rng rng(42);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  SolveOptions options = session.options();
  CostModel model;
  std::shared_ptr<const CostModelSnapshot> snapshot = model.Snapshot();

  // Immediate answers predict zero (admission always admits them).
  PreparedProblem immediate = session.Prepare(DiGraph(3));
  ASSERT_TRUE(immediate.immediate.has_value());
  ComponentDispatch no_plan;
  CostPrediction p = snapshot->PredictSolveCost(immediate, no_plan, options);
  EXPECT_EQ(p.expected.count(), 0);
  EXPECT_EQ(p.pessimistic.count(), 0);

  // A componentwise plan sums per-component predictions under the plan's
  // engine — the same units the executor will enqueue.
  bool saw_componentwise = false;
  for (const DiGraph& query : MixedServeQueries(&rng)) {
    PreparedProblem prepared = session.Prepare(query);
    ComponentDispatch plan = PlanComponentDispatch(prepared, options);
    if (plan.components < 2) continue;
    saw_componentwise = true;
    CostPrediction whole = snapshot->PredictSolveCost(prepared, plan, options);
    CostPrediction sum;
    const InstanceContext& ctx = *prepared.context;
    for (size_t c = 0; c < plan.components; ++c) {
      sum += snapshot->PredictComponent(
          plan.engine->name(), ctx.component_classes[c].finest,
          ctx.components[c].graph.NumUncertainEdges());
    }
    EXPECT_EQ(whole.expected, sum.expected);
    EXPECT_EQ(whole.optimistic, sum.optimistic);
    EXPECT_EQ(whole.pessimistic, sum.pessimistic);
    EXPECT_EQ(whole.from_prior, sum.from_prior);
  }
  EXPECT_TRUE(saw_componentwise)
      << "corpus must exercise the componentwise prediction path";
}

TEST(CostModel, DecideAdmissionIsConservative) {
  Rng rng(43);
  HardCellEnumerationCase hard(&rng, 12);
  EvalSession session(hard.instance);
  PreparedProblem prepared = session.Prepare(hard.query);
  ASSERT_FALSE(prepared.immediate.has_value());
  ComponentDispatch plan = PlanComponentDispatch(prepared, session.options());

  CostModel model;
  std::shared_ptr<const CostModelSnapshot> snapshot = model.Snapshot();
  SolveOptions off = session.options();  // degrade mode kOff
  SolveOptions on = off;
  on.degrade.mode = DegradeMode::kOnDeadlineRisk;

  CostPrediction predicted =
      snapshot->PredictSolveCost(prepared, plan, on);
  ASSERT_GT(predicted.optimistic.count(), 0) << "hard cell: nonzero prior";

  // No deadline → always admit, whatever the prediction says.
  EXPECT_EQ(DecideAdmission(*snapshot, prepared, plan, on, std::nullopt).action,
            AdmissionAction::kAdmitExact);
  // A budget even the optimistic edge cannot meet → proactive, but ONLY when
  // the policy allows degradation.
  std::chrono::nanoseconds tiny(predicted.optimistic.count() / 2);
  EXPECT_EQ(DecideAdmission(*snapshot, prepared, plan, on, tiny).action,
            AdmissionAction::kDegradeProactively);
  EXPECT_EQ(DecideAdmission(*snapshot, prepared, plan, off, tiny).action,
            AdmissionAction::kAdmitExact);
  // A budget the optimistic edge CAN meet → attempt exactly (may still
  // degrade reactively later) — the conservative half of the rule.
  std::chrono::nanoseconds roomy(predicted.optimistic.count() * 2);
  EXPECT_EQ(DecideAdmission(*snapshot, prepared, plan, on, roomy).action,
            AdmissionAction::kAdmitExact);
  // The decision always carries the prediction it was made against.
  EXPECT_EQ(DecideAdmission(*snapshot, prepared, plan, on, tiny)
                .predicted.expected,
            predicted.expected);
}

// ---------------------------------------------------------------------------
// Admission determinism: bit-identical decisions across threads & backends.
// ---------------------------------------------------------------------------

struct DecisionRecord {
  int action = 0;
  int64_t expected = 0;
  int64_t optimistic = 0;
  int64_t pessimistic = 0;
  bool from_prior = false;

  bool operator==(const DecisionRecord&) const = default;
};

class ServeAdmissionDeterminismTest : public ::testing::TestWithParam<size_t> {
};

TEST_P(ServeAdmissionDeterminismTest, DecisionsBitIdenticalAcrossThreads) {
  const size_t num_threads = GetParam();
  Rng rng(test_util::kCrosscheckSeedBase + 6);
  ProbGraph instance = MixedServeInstance(&rng);
  std::vector<DiGraph> queries = MixedServeQueries(&rng);

  // A model with a mix of learned and prior-backed cells.
  auto model = std::make_shared<CostModel>();
  model->RecordComponent("fallback", GraphClass::kConnected, 10,
                         std::chrono::milliseconds(5));
  model->RecordComponent("per-component", GraphClass::kTwoWayPath, 3,
                         std::chrono::microseconds(40));
  std::shared_ptr<const CostModelSnapshot> snapshot = model->Snapshot();

  // The corpus of (prepared, plan, options) units, over both backends.
  struct Unit {
    PreparedProblem prepared{DiGraph(0), nullptr, std::nullopt, {}};
    ComponentDispatch plan;
    SolveOptions options;
  };
  std::vector<Unit> units;
  for (NumericBackend backend :
       {NumericBackend::kExact, NumericBackend::kDouble}) {
    SolveOptions options;
    options.numeric = backend;
    options.degrade.mode = DegradeMode::kOnDeadlineRisk;
    EvalSession session(instance, options);
    for (const DiGraph& q : queries) {
      Unit u;
      u.prepared = session.Prepare(q);
      u.options = options;
      u.plan = PlanComponentDispatch(u.prepared, u.options);
      units.push_back(std::move(u));
    }
  }
  const std::vector<std::chrono::nanoseconds> budgets = {
      std::chrono::nanoseconds(1), std::chrono::microseconds(100),
      std::chrono::seconds(100)};

  auto decide_all = [&](std::vector<DecisionRecord>* out) {
    out->clear();
    for (const Unit& u : units) {
      for (const std::chrono::nanoseconds budget : budgets) {
        serve::AdmissionDecision d =
            DecideAdmission(*snapshot, u.prepared, u.plan, u.options, budget);
        out->push_back(DecisionRecord{
            static_cast<int>(d.action), d.predicted.expected.count(),
            d.predicted.optimistic.count(), d.predicted.pessimistic.count(),
            d.predicted.from_prior});
      }
    }
  };

  std::vector<DecisionRecord> baseline;
  decide_all(&baseline);
  ASSERT_FALSE(baseline.empty());
  bool saw_proactive = false;
  bool saw_admit = false;
  for (const DecisionRecord& r : baseline) {
    saw_proactive = saw_proactive || r.action != 0;
    saw_admit = saw_admit || r.action == 0;
  }
  EXPECT_TRUE(saw_proactive) << "corpus must exercise both decisions";
  EXPECT_TRUE(saw_admit);

  // Concurrent deciders against the SAME shared snapshot must reproduce the
  // serial decisions bit for bit (and race-free: this runs under TSan).
  std::vector<std::vector<DecisionRecord>> per_thread(num_threads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] { decide_all(&per_thread[t]); });
  }
  for (std::thread& w : workers) w.join();
  for (size_t t = 0; t < num_threads; ++t) {
    EXPECT_EQ(per_thread[t], baseline) << "thread " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ServeAdmissionDeterminismTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "Threads" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Executor integration: proactive degrade, reactive provenance, shedding.
// ---------------------------------------------------------------------------

TEST(ServeAdmission, ProactiveDegradeSkipsTheExactSolveEntirely) {
  // The headline acceptance criterion: a request the model predicts cannot
  // fit — even optimistically — must produce a degraded result WITHOUT the
  // exact solve ever starting. The 20-edge hard cell's prior is ~2 µs · 2^20
  // ≈ 2 s (optimistic ≈ 260 ms), far over the 50 ms budget.
  Rng rng(test_util::kCrosscheckSeedBase + 60);
  HardCellEnumerationCase hard(&rng, 20);
  EvalSession session(hard.instance);

  ExecutorOptions options;
  options.threads = 2;
  options.cost_model = std::make_shared<CostModel>();
  BatchExecutor executor(options);

  SolveRequest request(hard.query);
  request.WithTimeout(std::chrono::milliseconds(50))
      .WithDegradeOnDeadlineRisk()
      .WithMonteCarloSeed(1234);
  SolveTicket ticket = executor.Submit(session, std::move(request));
  Result<SolveResult> result = ticket.Get();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degrade.degraded);
  EXPECT_TRUE(result->degrade.proactive)
      << "admission-time skips must carry proactive provenance";
  EXPECT_GE(result->degrade.samples_used, 1u);
  EXPECT_GE(result->degrade.estimate, 0.0);
  EXPECT_LE(result->degrade.estimate, 1.0);

  RequestStats stats = ticket.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_FALSE(stats.shed);
  EXPECT_GT(stats.predicted_cost, std::chrono::milliseconds(100))
      << "the hard-cell prior must dominate the 50 ms budget";
  ExpectTimelineMonotonic(stats, "proactive ticket");

  ExecutorStats exec = executor.stats();
  EXPECT_EQ(exec.submitted, 1u);
  EXPECT_EQ(exec.exact_solves_started, 0u)
      << "the exact solve must never start for a proactively degraded request";
  EXPECT_EQ(exec.degraded_proactive, 1u);
  EXPECT_EQ(exec.degraded_reactive, 0u);
  EXPECT_EQ(exec.shed, 0u);
}

TEST(ServeAdmission, ReactiveConversionIsNotMarkedProactive) {
  // Prime the model so admission predicts the solve fits; the real
  // enumeration then misses the deadline mid-flight and converts
  // REACTIVELY — provenance must say proactive=false and the exact-solve
  // counter must show the attempt.
  Rng rng(test_util::kCrosscheckSeedBase + 61);
  HardCellEnumerationCase hard(&rng, 20);
  EvalSession session(hard.instance);

  ExecutorOptions options;
  options.threads = 1;
  options.cost_model = std::make_shared<CostModel>();
  BatchExecutor executor(options);

  SolveOptions degrade_on = session.options();
  degrade_on.degrade.mode = DegradeMode::kOnDeadlineRisk;
  {
    PreparedProblem prepared = session.Prepare(hard.query);
    PrimeWholeProblemCell(options.cost_model.get(), prepared, degrade_on,
                          std::chrono::microseconds(1));
  }

  SolveRequest request(hard.query);
  request.WithTimeout(std::chrono::milliseconds(80))
      .WithDegradeOnDeadlineRisk()
      .WithMonteCarloSeed(777);
  SolveTicket ticket = executor.Submit(session, std::move(request));
  Result<SolveResult> result = ticket.Get();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->degrade.degraded);
  EXPECT_FALSE(result->degrade.proactive)
      << "a mid-flight conversion is reactive, not proactive";
  EXPECT_EQ(ticket.stats().predicted_cost, std::chrono::microseconds(1));
  ExpectTimelineMonotonic(ticket.stats(), "reactive ticket");

  ExecutorStats exec = executor.stats();
  EXPECT_EQ(exec.exact_solves_started, 1u);
  EXPECT_EQ(exec.degraded_reactive, 1u);
  EXPECT_EQ(exec.degraded_proactive, 0u);
}

TEST(ServeAdmission, ShedsHopelessRequestsAtSubmitWithoutPreparing) {
  test_util::EnsureGateEngineRegistered(kGateEngine);
  TestGate()->Reset();
  Rng rng(test_util::kCrosscheckSeedBase + 62);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);

  ExecutorOptions options;
  options.threads = 1;
  options.split_components = false;  // whole-problem keys throughout
  options.cost_model = std::make_shared<CostModel>();
  options.enable_shedding = true;
  BatchExecutor executor(options);
  GateOpener opener;  // after the executor: failure-proofs the drain

  // Teach the model that the gate engine takes 10 s on this cell, then park
  // the lone worker on it: the pool now carries a predicted 10 s backlog.
  const DiGraph blocker_query = MakeLabeledPath({0});
  SolveOptions forced = session.options();
  forced.force_engine = kGateEngine;
  {
    PreparedProblem prepared = session.Prepare(blocker_query);
    PrimeWholeProblemCell(options.cost_model.get(), prepared, forced,
                          std::chrono::seconds(10));
  }
  SolveRequest blocker(blocker_query);
  blocker.WithEngine(kGateEngine);
  SolveTicket blocker_ticket = executor.Submit(session, std::move(blocker));
  TestGate()->AwaitEntered(1);  // the worker is inside the gate engine

  // Victim 1: a 10 ms deadline against a 10 s backlog, no pending deadlines
  // to beat, shedding on, degradation off → rejected at submit, with the
  // session untouched.
  const size_t queries_before = session.stats().queries;
  SolveRequest hopeless(MakeLabeledPath({1}));
  hopeless.WithTimeout(std::chrono::milliseconds(10));
  SolveTicket shed_ticket = executor.Submit(session, std::move(hopeless));
  Result<SolveResult> shed_result = shed_ticket.Get();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), Status::Code::kResourceExhausted);
  EXPECT_TRUE(shed_ticket.stats().shed);
  EXPECT_EQ(shed_ticket.stats().predicted_cost.count(), 0)
      << "shedding fires before preparation, so nothing was predicted";
  EXPECT_EQ(session.stats().queries, queries_before)
      << "a shed request must never touch the session";
  ExpectTimelineMonotonic(shed_ticket.stats(), "shed ticket");

  // Victim 2: a distant deadline the backlog CAN clear → admitted normally.
  SolveRequest patient(MakeLabeledPath({1}));
  patient.WithTimeout(std::chrono::hours(1));
  SolveTicket patient_ticket = executor.Submit(session, std::move(patient));
  EXPECT_FALSE(patient_ticket.done()) << "admitted, waiting on the backlog";

  // Victim 3: another 10 ms deadline — but now victim 2's one-hour deadline
  // is pending and the backlog clears before it, so the conservative rule
  // must NOT shed (a reordering could still serve victim 2). The request is
  // admitted and, with degradation off, eventually answers DeadlineExceeded.
  SolveRequest doomed(MakeLabeledPath({1}));
  doomed.WithTimeout(std::chrono::milliseconds(10));
  SolveTicket doomed_ticket = executor.Submit(session, std::move(doomed));

  // Let the admitted 10 ms deadline actually lapse while the worker is still
  // parked, then release it: the dequeue gate answers DeadlineExceeded.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  TestGate()->Open();
  Result<SolveResult> blocker_result = blocker_ticket.Get();
  ASSERT_TRUE(blocker_result.ok()) << blocker_result.status().ToString();
  EXPECT_EQ(blocker_result->stats.engine, kGateEngine);
  Result<SolveResult> patient_result = patient_ticket.Get();
  ASSERT_TRUE(patient_result.ok()) << patient_result.status().ToString();
  Result<SolveResult> doomed_result = doomed_ticket.Get();
  ASSERT_FALSE(doomed_result.ok());
  EXPECT_EQ(doomed_result.status().code(), Status::Code::kDeadlineExceeded)
      << "not shed: some pending deadline was satisfiable";
  EXPECT_FALSE(doomed_ticket.stats().shed);

  ExecutorStats exec = executor.stats();
  EXPECT_EQ(exec.submitted, 4u);
  EXPECT_EQ(exec.shed, 1u);
}

// ---------------------------------------------------------------------------
// Slack ordering: earliest effective deadline first.
// ---------------------------------------------------------------------------

TEST(ServeAdmission, PlainEdfRunsEarlierDeadlineFirstWithoutAModel) {
  test_util::EnsureGateEngineRegistered(kGateEngine);
  TestGate()->Reset();
  Rng rng(test_util::kCrosscheckSeedBase + 63);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);

  BatchExecutor executor(ExecutorOptions{.threads = 1});
  GateOpener opener;

  SolveRequest blocker(MakeLabeledPath({0}));
  blocker.WithEngine(kGateEngine);
  SolveTicket blocker_ticket = executor.Submit(session, std::move(blocker));
  TestGate()->AwaitEntered(1);

  // Submitted late-deadline-first: FIFO would run "late" first; EDF must
  // run "early" first.
  std::mutex order_mu;
  std::vector<std::string> order;
  auto record = [&](std::string name) {
    return [&, name](const Result<SolveResult>&, const RequestStats&) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
    };
  };
  SolveRequest late(MakeLabeledPath({1}));
  late.WithDeadline(RequestClock::now() + std::chrono::seconds(60));
  SolveTicket late_ticket =
      executor.Submit(session, std::move(late), record("late"));
  SolveRequest early(MakeLabeledPath({1}));
  early.WithDeadline(RequestClock::now() + std::chrono::seconds(30));
  SolveTicket early_ticket =
      executor.Submit(session, std::move(early), record("early"));

  TestGate()->Open();
  ASSERT_TRUE(late_ticket.Get().ok());
  ASSERT_TRUE(early_ticket.Get().ok());
  ASSERT_TRUE(blocker_ticket.Get().ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "early");
  EXPECT_EQ(order[1], "late");
}

TEST(ServeAdmission, SlackOrderingSubtractsPredictedCostFromTheDeadline) {
  // With a model, urgency is deadline MINUS predicted cost: a far deadline
  // with a huge predicted cost has less slack than a near deadline with a
  // tiny one, and must run first — the opposite of plain EDF.
  test_util::EnsureGateEngineRegistered(kGateEngine);
  test_util::EnsureGateEngineRegistered(kHeavyEngine);
  test_util::EnsureGateEngineRegistered(kLightEngine);
  TestGate()->Reset();
  Rng rng(test_util::kCrosscheckSeedBase + 64);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);

  ExecutorOptions options;
  options.threads = 1;
  options.split_components = false;
  options.cost_model = std::make_shared<CostModel>();
  BatchExecutor executor(options);
  GateOpener opener;

  const DiGraph query = MakeLabeledPath({0});
  {
    PreparedProblem prepared = session.Prepare(query);
    SolveOptions heavy = session.options();
    heavy.force_engine = kHeavyEngine;
    PrimeWholeProblemCell(options.cost_model.get(), prepared, heavy,
                          std::chrono::seconds(100));
    SolveOptions light = session.options();
    light.force_engine = kLightEngine;
    PrimeWholeProblemCell(options.cost_model.get(), prepared, light,
                          std::chrono::milliseconds(1));
  }

  SolveRequest blocker(query);
  blocker.WithEngine(kGateEngine);
  SolveTicket blocker_ticket = executor.Submit(session, std::move(blocker));
  TestGate()->AwaitEntered(1);

  std::mutex order_mu;
  std::vector<std::string> order;
  auto record = [&](std::string name) {
    return [&, name](const Result<SolveResult>&, const RequestStats&) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
    };
  };
  // "light": earlier raw deadline (30 s), tiny predicted cost → effective
  // ≈ now + 30 s. Submitted FIRST, so both FIFO and plain EDF would run it
  // first.
  SolveRequest light(query);
  light.WithEngine(kLightEngine)
      .WithDeadline(RequestClock::now() + std::chrono::seconds(30));
  SolveTicket light_ticket =
      executor.Submit(session, std::move(light), record("light"));
  // "heavy": later raw deadline (60 s) but a 100 s predicted cost →
  // effective deadline far in the past → less slack → runs first.
  SolveRequest heavy(query);
  heavy.WithEngine(kHeavyEngine)
      .WithDeadline(RequestClock::now() + std::chrono::seconds(60));
  SolveTicket heavy_ticket =
      executor.Submit(session, std::move(heavy), record("heavy"));
  EXPECT_EQ(heavy_ticket.stats().predicted_cost, std::chrono::seconds(100))
      << "a single observation IS the EWMA mean";

  TestGate()->Open();
  ASSERT_TRUE(heavy_ticket.Get().ok());
  ASSERT_TRUE(light_ticket.Get().ok());
  ASSERT_TRUE(blocker_ticket.Get().ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "heavy")
      << "predicted cost must shift urgency ahead of the raw deadline";
  EXPECT_EQ(order[1], "light");
}

// ---------------------------------------------------------------------------
// The WithTimeout/WithBudget submit-time fix (the bug this sweep targets).
// ---------------------------------------------------------------------------

TEST(ServeAdmission, BudgetResolvesAtSubmitNotAtConstruction) {
  Rng rng(test_util::kCrosscheckSeedBase + 65);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});

  // Regression: building the request long before submitting it must not eat
  // the budget. Under the old construction-time stamping this request would
  // arrive already expired and fail with DeadlineExceeded.
  SolveRequest request(MakeLabeledPath({0}));
  request.WithTimeout(std::chrono::milliseconds(150));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const RequestClock::time_point submit_time = RequestClock::now();
  SolveTicket ticket = executor.Submit(session, std::move(request));
  Result<SolveResult> result = ticket.Get();
  ASSERT_TRUE(result.ok())
      << "budget must start at submit, not construction: "
      << result.status().ToString();
  EXPECT_FALSE(ticket.stats().expired_before_start);
  EXPECT_GE(ticket.stats().enqueued, submit_time -
                                         std::chrono::milliseconds(1));
  ExpectTimelineMonotonic(ticket.stats(), "budget ticket");

  // When both are set, the earlier effective deadline wins: an
  // already-lapsed absolute deadline beats a roomy budget.
  SolveRequest both(MakeLabeledPath({0}));
  both.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1))
      .WithBudget(std::chrono::hours(1));
  Result<SolveResult> expired =
      executor.Submit(session, std::move(both)).Get();
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), Status::Code::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// No deadlines → bit-identical to the FIFO executor, model installed or not.
// ---------------------------------------------------------------------------

class ServeAdmissionIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ServeAdmissionIdentityTest, NoDeadlinesBitIdenticalWithModelInstalled) {
  const size_t threads = GetParam();
  for (NumericBackend backend :
       {NumericBackend::kExact, NumericBackend::kDouble}) {
    Rng rng(test_util::kCrosscheckSeedBase + 66);
    ProbGraph instance = MixedServeInstance(&rng);
    std::vector<DiGraph> queries = MixedServeQueries(&rng);
    std::vector<DiGraph> batch = queries;
    batch.insert(batch.end(), queries.begin(), queries.end());

    SolveOptions options;
    options.numeric = backend;
    EvalSession serial_session(instance, options);
    std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);

    ExecutorOptions exec_options;
    exec_options.threads = threads;
    exec_options.cost_model = std::make_shared<CostModel>();
    exec_options.enable_shedding = true;  // must be inert without deadlines
    BatchExecutor executor(exec_options);
    EvalSession async_session(instance, options);
    std::vector<SolveRequest> requests;
    requests.reserve(batch.size());
    for (const DiGraph& q : batch) requests.push_back(SolveRequest(q));
    std::vector<SolveTicket> tickets =
        executor.SubmitBatch(async_session, std::move(requests));
    std::vector<Result<SolveResult>> async = BatchExecutor::Collect(tickets);

    const std::string label = std::string("backend=") + ToString(backend) +
                              " threads=" + std::to_string(threads);
    ASSERT_EQ(serial.size(), async.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectResultsBitIdentical(serial[i], async[i],
                                label + " query " + std::to_string(i));
    }
    EXPECT_EQ(serial_session.stats().queries, async_session.stats().queries);
    EXPECT_EQ(serial_session.stats().instance_preparations,
              async_session.stats().instance_preparations);
    for (SolveTicket& t : tickets) {
      ExpectTimelineMonotonic(t.stats(), label);
    }
    ExecutorStats exec = executor.stats();
    EXPECT_EQ(exec.submitted, batch.size());
    EXPECT_EQ(exec.degraded_proactive, 0u);
    EXPECT_EQ(exec.degraded_reactive, 0u);
    EXPECT_EQ(exec.shed, 0u);
    EXPECT_GT(exec.exact_solves_started, 0u);
    // The model learned from the served exact solves.
    EXPECT_GT(exec_options.cost_model->Snapshot()->num_cells(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ServeAdmissionIdentityTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "Threads" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// MpmcQueue capacity edge cases (the overflow fix rides this sweep).
// ---------------------------------------------------------------------------

TEST(ServeAdmissionQueue, CapacityRoundsUpToAPowerOfTwoWithFloorTwo) {
  EXPECT_EQ(MpmcQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(1024).capacity(), 1024u);
  EXPECT_EQ(MpmcQueue<int>(1025).capacity(), 2048u);
}

TEST(ServeAdmissionQueue, OversizeCapacityIsRejectedNotWrappedAround) {
  // Pre-fix, `cap <<= 1` wrapped past 2^63 and the rounding loop never
  // terminated. The constructor must reject such requests up front.
  EXPECT_THROW(MpmcQueue<int>(SIZE_MAX), std::logic_error);
  EXPECT_THROW(MpmcQueue<int>((size_t{1} << 31) + 1), std::logic_error);
  EXPECT_THROW(MpmcQueue<int>(size_t{1} << 62), std::logic_error);
}

TEST(ServeAdmissionQueue, MinimumCapacityQueueFillsDrainsAndWraps) {
  MpmcQueue<int> queue(1);  // rounds to 2 cells
  ASSERT_EQ(queue.capacity(), 2u);
  EXPECT_TRUE(queue.TryPush(10));
  EXPECT_TRUE(queue.TryPush(11));
  EXPECT_FALSE(queue.TryPush(12)) << "full at the rounded capacity";
  int out = 0;
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(queue.TryPush(12)) << "a freed cell is reusable (wraparound)";
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 11);
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 12);
  EXPECT_FALSE(queue.TryPop(&out)) << "empty after draining";
}

}  // namespace
}  // namespace phom
