#include "src/core/case.h"

#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

ProbGraph Certain(const DiGraph& g) { return ProbGraph::Certain(g); }

/// A polytree that is neither a 2WP nor a DWT (Figure 4, right-ish).
DiGraph ProperPolytree() {
  DiGraph g(5);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 2, 1, 0);
  AddEdgeOrDie(&g, 1, 3, 0);
  AddEdgeOrDie(&g, 1, 4, 0);
  return g;
}

TEST(Case, DropIsolatedVertices) {
  DiGraph g(5);
  AddEdgeOrDie(&g, 1, 3, 7);
  DiGraph out = DropIsolatedVertices(g);
  EXPECT_EQ(out.num_vertices(), 2u);
  EXPECT_EQ(out.num_edges(), 1u);
  EXPECT_EQ(out.edge(0).label, 7u);
}

TEST(Case, TrivialCases) {
  EXPECT_EQ(*PrepareProblem(DiGraph(0), Certain(MakeOneWayPath(2))).immediate,
            Rational::One());
  EXPECT_EQ(*PrepareProblem(MakeOneWayPath(1), ProbGraph(0)).immediate,
            Rational::Zero());
  // Edgeless query on a non-empty instance: always true.
  EXPECT_EQ(*PrepareProblem(DiGraph(4), Certain(DiGraph(1))).immediate,
            Rational::One());
}

TEST(Case, EffectiveUnlabeledAfterRestriction) {
  // Instance uses labels {0,1}, query only {0}: effectively unlabeled.
  DiGraph q = MakeLabeledPath({0, 0});
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 1, 2, 1, Rational::Half());
  CaseAnalysis a = AnalyzeCase(q, h);
  EXPECT_TRUE(a.effective_unlabeled);
  EXPECT_TRUE(a.tractable);
}

// ---------------------------------------------------------------------------
// Table 2 (labeled, connected queries): representative two-label graphs.
// ---------------------------------------------------------------------------

DiGraph Labeled1wp() { return MakeLabeledPath({0, 1, 0}); }
DiGraph Labeled2wp() {
  return MakeTwoWayPath({{0, true}, {1, false}, {0, true}});
}
// Note the three children: a two-leaf star would also be a 2WP.
DiGraph LabeledDwt() { return MakeDownwardTree({0, 0, 0}, {0, 1, 0}); }
DiGraph LabeledPt() {
  DiGraph g(4);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 2, 1, 1);
  AddEdgeOrDie(&g, 1, 3, 0);
  return g;
}
DiGraph LabeledCycle() {
  DiGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 1, 2, 1);
  AddEdgeOrDie(&g, 2, 0, 0);
  return g;
}

TEST(Case, Table2LabeledConnected) {
  struct Cell {
    DiGraph query;
    DiGraph instance;
    bool tractable;
  };
  const std::vector<Cell> cells = {
      {Labeled1wp(), Labeled1wp(), true},
      {Labeled1wp(), Labeled2wp(), true},
      {Labeled1wp(), LabeledDwt(), true},   // Prop. 4.10
      {Labeled1wp(), LabeledPt(), false},   // Prop. 4.1
      {Labeled1wp(), LabeledCycle(), false},
      {Labeled2wp(), Labeled1wp(), true},   // Prop. 4.11
      {Labeled2wp(), Labeled2wp(), true},
      {Labeled2wp(), LabeledDwt(), false},  // Prop. 4.5
      {Labeled2wp(), LabeledPt(), false},
      {LabeledDwt(), Labeled2wp(), true},   // Prop. 4.11
      {LabeledDwt(), LabeledDwt(), false},  // Prop. 4.4
      {LabeledPt(), Labeled2wp(), true},
      {LabeledPt(), LabeledDwt(), false},
      {LabeledCycle(), Labeled2wp(), true},
      {LabeledCycle(), LabeledPt(), false},
  };
  for (size_t i = 0; i < cells.size(); ++i) {
    CaseAnalysis a = AnalyzeCase(cells[i].query, Certain(cells[i].instance));
    ASSERT_FALSE(a.effective_unlabeled) << "cell " << i;
    EXPECT_EQ(a.tractable, cells[i].tractable)
        << "cell " << i << ": " << a.cell << " / " << a.proposition;
  }
}

TEST(Case, LabeledDisconnectedQueryIsHard) {
  // Prop. 3.3: even ⊔1WP queries on 1WP instances.
  DiGraph q = DisjointUnion({MakeLabeledPath({0, 1}), MakeLabeledPath({1, 0})});
  CaseAnalysis a = AnalyzeCase(q, Certain(MakeLabeledPath({0, 1, 0, 1})));
  EXPECT_FALSE(a.effective_unlabeled);
  EXPECT_FALSE(a.tractable);
  EXPECT_EQ(a.algorithm, Algorithm::kFallback);
  EXPECT_NE(a.proposition.find("3.3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tables 1+3 (unlabeled).
// ---------------------------------------------------------------------------

TEST(Case, Table1UnlabeledDisconnectedQueries) {
  Rng rng(92);
  DiGraph u1wp = DisjointUnion({MakeOneWayPath(2), MakeOneWayPath(3)});
  DiGraph u2wp = DisjointUnion({MakeArrowPath("><"), MakeArrowPath("<>")});
  DiGraph udwt = DisjointUnion({MakeOutStar(2), MakeDownwardTree({0, 1})});

  DiGraph i_1wp = MakeOneWayPath(6);
  DiGraph i_2wp = MakeArrowPath("><><>");
  DiGraph i_dwt = MakeOutStar(4);
  DiGraph i_pt = ProperPolytree();
  DiGraph i_conn = RandomConnected(&rng, 6, 4, 1);

  // Row ⊔1WP: PTIME on 1WP..PT (collapses to a 1WP query), hard on Connected.
  EXPECT_TRUE(AnalyzeCase(u1wp, Certain(i_1wp)).tractable);
  EXPECT_TRUE(AnalyzeCase(u1wp, Certain(i_2wp)).tractable);
  EXPECT_TRUE(AnalyzeCase(u1wp, Certain(i_dwt)).tractable);
  EXPECT_TRUE(AnalyzeCase(u1wp, Certain(i_pt)).tractable);
  EXPECT_FALSE(AnalyzeCase(u1wp, Certain(i_conn)).tractable);

  // Row ⊔DWT: same (Prop. 5.5).
  EXPECT_TRUE(AnalyzeCase(udwt, Certain(i_pt)).tractable);
  EXPECT_FALSE(AnalyzeCase(udwt, Certain(i_conn)).tractable);

  // Row ⊔2WP: PTIME on 1WP and DWT columns (Prop. 3.6), hard on 2WP
  // (Prop. 3.4) and PT columns.
  EXPECT_TRUE(AnalyzeCase(u2wp, Certain(i_1wp)).tractable);
  EXPECT_TRUE(AnalyzeCase(u2wp, Certain(i_dwt)).tractable);
  EXPECT_FALSE(AnalyzeCase(u2wp, Certain(i_2wp)).tractable);
  EXPECT_FALSE(AnalyzeCase(u2wp, Certain(i_pt)).tractable);
}

TEST(Case, Table3UnlabeledConnectedQueries) {
  Rng rng(93);
  DiGraph q_1wp = MakeOneWayPath(3);
  DiGraph q_2wp = MakeArrowPath("><>");
  DiGraph q_dwt = MakeOutStar(3);
  DiGraph q_conn = RandomConnected(&rng, 5, 3, 1);

  DiGraph i_2wp = MakeArrowPath("><><");
  DiGraph i_dwt = MakeDownwardTree({0, 0, 1, 1});
  DiGraph i_pt = ProperPolytree();
  DiGraph i_conn = RandomConnected(&rng, 6, 4, 1);

  EXPECT_TRUE(AnalyzeCase(q_1wp, Certain(i_pt)).tractable);    // Prop. 5.4
  EXPECT_TRUE(AnalyzeCase(q_dwt, Certain(i_pt)).tractable);    // Prop. 5.5
  EXPECT_FALSE(AnalyzeCase(q_2wp, Certain(i_pt)).tractable);   // Prop. 5.6
  EXPECT_FALSE(AnalyzeCase(q_1wp, Certain(i_conn)).tractable); // Prop. 5.1
  EXPECT_TRUE(AnalyzeCase(q_2wp, Certain(i_2wp)).tractable);   // Prop. 4.11
  EXPECT_TRUE(AnalyzeCase(q_conn, Certain(i_2wp)).tractable);  // Prop. 4.11
  EXPECT_TRUE(AnalyzeCase(q_conn, Certain(i_dwt)).tractable);  // Prop. 3.6
  EXPECT_TRUE(AnalyzeCase(q_2wp, Certain(i_dwt)).tractable);   // Prop. 3.6
}

TEST(Case, MixedInstanceUnionsStayTractableForConnectedQueries) {
  // §3.3: the tables also hold for unions of the instance classes; the
  // per-component dispatch even covers mixing 2WP and DWT components.
  DiGraph q = MakeArrowPath("><");
  DiGraph mixed = DisjointUnion({MakeArrowPath("><>"), MakeOutStar(3)});
  CaseAnalysis a = AnalyzeCase(q, Certain(mixed));
  EXPECT_TRUE(a.effective_unlabeled);
  EXPECT_TRUE(a.tractable);
  EXPECT_EQ(a.algorithm, Algorithm::kPerComponent);
}

TEST(Case, CollapseReporting) {
  DiGraph q = DisjointUnion({MakeOutStar(2), MakeDownwardTree({0, 1, 2})});
  CaseAnalysis a = AnalyzeCase(q, Certain(MakeOneWayPath(5)));
  EXPECT_TRUE(a.query_collapsed);
  EXPECT_EQ(a.collapsed_length, 3);  // height of the deepest component
  EXPECT_TRUE(a.query_class.is_1wp);
}

TEST(Case, NonGradedQueryOnForestIsImmediateZero) {
  DiGraph q(3);  // directed triangle: not graded
  AddEdgeOrDie(&q, 0, 1, 0);
  AddEdgeOrDie(&q, 1, 2, 0);
  AddEdgeOrDie(&q, 2, 0, 0);
  PreparedProblem p = PrepareProblem(q, Certain(MakeOutStar(3)));
  ASSERT_TRUE(p.immediate.has_value());
  EXPECT_EQ(*p.immediate, Rational::Zero());
  EXPECT_TRUE(p.analysis.tractable);
}

TEST(Case, TableClassLabels) {
  EXPECT_EQ(TableClassLabel(Classify(MakeOneWayPath(2))), "1WP");
  EXPECT_EQ(TableClassLabel(Classify(MakeArrowPath("><"))), "2WP");
  EXPECT_EQ(TableClassLabel(Classify(MakeOutStar(3))), "DWT");
  DiGraph u = DisjointUnion({MakeOneWayPath(1), MakeOneWayPath(2)});
  EXPECT_EQ(TableClassLabel(Classify(u)), "u1WP");
}

}  // namespace
}  // namespace phom
