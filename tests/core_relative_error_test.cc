#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "src/core/eval_session.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/executor.h"
#include "tests/test_util.h"

/// Tier-1 coverage of the relative-error FPRAS path (the multiplicative
/// guarantee of Amarilli–van Bremen–Gaspard–Meel 2023): the deterministic
/// lineage lower bound is CERTIFIED (lb <= p, proved against the exact
/// answer in rational arithmetic), the relative stop rule delivers
/// relative_error_95 <= target, the exact-zero certificate turns an empty
/// enumeration into an exact p = 0 answer with no sampling at all, and the
/// provenance (DegradeInfo, RequestStats::guarantee, executor counters)
/// reports the statistical claim end to end through the serve layer.

namespace phom {
namespace {

using test_util::CellClass;
using test_util::HardCellEnumerationCase;
using test_util::kCrosscheckSeedBase;
using test_util::MakeCrosscheckCase;

TEST(RelativeError, LowerBoundIsCertifiedAcrossHardCorpus) {
  // The hard cell of the cross-check corpus: small enough that the exact
  // exponential fallback is instant, so lb <= p is checked exactly.
  Rng rng(kCrosscheckSeedBase + 4000);
  for (int trial = 0; trial < 20; ++trial) {
    test_util::CrosscheckCase c =
        MakeCrosscheckCase(CellClass::kHardCell, &rng);
    const std::string context = "trial " + std::to_string(trial);

    Result<SolveResult> exact = Solver().Solve(c.query, c.instance);
    ASSERT_TRUE(exact.ok()) << context;

    MonteCarloOptions options;
    options.samples = 4096;
    options.min_samples = 256;
    options.target_relative_error = 0.5;
    Result<MonteCarloEstimate> est = EstimateProbabilityMonteCarlo(
        c.query, c.instance, 7000 + static_cast<uint64_t>(trial), options);
    ASSERT_TRUE(est.ok()) << context;

    if (est->exact_zero) {
      // The certificate is exact: the true answer must BE zero.
      EXPECT_TRUE(exact->probability.is_zero()) << context;
      EXPECT_EQ(est->samples, 0u) << context;
      EXPECT_EQ(est->relative_error_95, 0.0) << context;
      continue;
    }
    // lb <= p, decided in exact arithmetic (FromDouble is lossless).
    EXPECT_TRUE(Rational::FromDouble(est->lower_bound) <= exact->probability)
        << context << ": lb=" << est->lower_bound
        << " exact=" << exact->probability.ToDouble();
    if (est->lower_bound > 0.0) {
      EXPECT_TRUE(std::isfinite(est->relative_error_95)) << context;
      EXPECT_GT(est->relative_error_95, 0.0) << context;
    } else {
      EXPECT_EQ(est->relative_error_95,
                std::numeric_limits<double>::infinity())
          << context;
    }
  }
}

TEST(RelativeError, StopRuleMeetsTargetOnHardCell) {
  Rng rng(kCrosscheckSeedBase + 4100);
  HardCellEnumerationCase hard(&rng, /*edges=*/14);

  Result<SolveResult> exact = Solver().Solve(hard.query, hard.instance);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  const double p = exact->probability.ToDouble();
  ASSERT_GT(p, 0.0);

  MonteCarloOptions options;
  options.samples = 1'000'000;
  options.min_samples = 256;
  options.target_relative_error = 0.05;
  Result<MonteCarloEstimate> est =
      EstimateProbabilityMonteCarlo(hard.query, hard.instance, 99, options);
  ASSERT_TRUE(est.ok()) << est.status().ToString();

  EXPECT_FALSE(est->exact_zero);
  EXPECT_TRUE(est->converged)
      << "the relative stop rule must fire well inside the sample cap";
  EXPECT_LT(est->samples, options.samples);
  EXPECT_GT(est->lower_bound, 0.0);
  EXPECT_TRUE(Rational::FromDouble(est->lower_bound) <= exact->probability);
  // The certified relative claim the stop rule promises.
  EXPECT_LE(est->relative_error_95, options.target_relative_error);
  // And — at this fixed seed — the estimate really is relatively tight
  // against the exact answer (the 95% event; deterministic per seed).
  EXPECT_LE(std::abs(est->estimate - p), options.target_relative_error * p);
}

TEST(RelativeError, ExactZeroCertificateSkipsSampling) {
  // Label 1 never appears with positive probability: p == 0 exactly. One
  // structurally-present label-1 edge with probability zero exercises the
  // positive-subgraph restriction too.
  DiGraph shape(3);
  AddEdgeOrDie(&shape, 0, 1, 0);
  AddEdgeOrDie(&shape, 1, 2, 1);
  ProbGraph instance(shape, {Rational(1, 2), Rational::Zero()});
  DiGraph query = MakeLabeledPath({1});

  MonteCarloOptions options;
  options.samples = 100'000;
  options.target_relative_error = 0.2;
  Result<MonteCarloEstimate> est =
      EstimateProbabilityMonteCarlo(query, instance, 5, options);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->exact_zero);
  EXPECT_TRUE(est->converged);
  EXPECT_EQ(est->samples, 0u) << "a proven zero draws no samples";
  EXPECT_EQ(est->estimate, 0.0);
  EXPECT_EQ(est->relative_error_95, 0.0);

  // Through the degrade path the certificate produces an EXACT result: a
  // certified point bound at zero and no degraded provenance.
  SolveOptions solve_options;
  DegradePolicy policy;
  policy.mode = DegradeMode::kOnDeadlineRisk;
  policy.target_relative_error = 0.2;
  solve_options.degrade = policy;
  Result<SolveResult> degraded =
      SolveDegradedMonteCarlo(PrepareProblem(query, instance), solve_options);
  ASSERT_TRUE(degraded.ok());
  EXPECT_FALSE(degraded->degrade.degraded);
  EXPECT_EQ(degraded->probability_double, 0.0);
  EXPECT_TRUE(degraded->bound.certified);
  EXPECT_EQ(degraded->bound.lo, 0.0);
  EXPECT_EQ(degraded->bound.hi, 0.0);
  EXPECT_EQ(GuaranteeOf(*degraded), Guarantee::kExact);
}

TEST(RelativeError, DegradePathMeetsTargetWithoutDeadlinePressure) {
  Rng rng(kCrosscheckSeedBase + 4200);
  HardCellEnumerationCase hard(&rng, /*edges=*/14);
  Result<SolveResult> exact = Solver().Solve(hard.query, hard.instance);
  ASSERT_TRUE(exact.ok());

  SolveOptions options;
  DegradePolicy policy;
  policy.mode = DegradeMode::kOnDeadlineRisk;
  policy.min_samples = 256;
  policy.max_samples = 1'000'000;
  policy.target_relative_error = 0.1;
  options.degrade = policy;
  Result<SolveResult> result =
      SolveDegradedMonteCarlo(PrepareProblem(hard.query, hard.instance),
                              options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degrade.degraded);
  EXPECT_GT(result->degrade.lower_bound, 0.0);
  EXPECT_TRUE(
      Rational::FromDouble(result->degrade.lower_bound) <= exact->probability);
  // Unconstrained by a deadline, sampling runs until the certified relative
  // bound meets the target.
  EXPECT_LE(result->degrade.relative_error_95, policy.target_relative_error);
  EXPECT_EQ(result->relative_error_95, result->degrade.relative_error_95);
  EXPECT_EQ(GuaranteeOf(*result), Guarantee::kRelative95);
  // The statistical bracket is reported but NOT certified.
  EXPECT_FALSE(result->bound.certified);
  EXPECT_GE(result->probability_double, result->bound.lo);
  EXPECT_LE(result->probability_double, result->bound.hi);
}

TEST(RelativeError, ServeOverrideThreadsTargetThroughTheExecutor) {
  Rng rng(kCrosscheckSeedBase + 4300);
  HardCellEnumerationCase hard(&rng, /*edges=*/14);
  EvalSession session(hard.instance);

  serve::ExecutorOptions exec_options;
  exec_options.threads = 2;
  serve::BatchExecutor executor(exec_options);

  // An already-expired deadline with the degrade policy on: the worker
  // produces the budgeted estimate, truncated at the sampling floor, and
  // the target-relative override reaches the estimator through
  // SolveOverrides::target_relative_error.
  DegradePolicy policy;
  policy.mode = DegradeMode::kOnDeadlineRisk;
  policy.min_samples = 512;
  serve::SolveRequest request(hard.query);
  request
      .WithDeadline(serve::RequestClock::now() - std::chrono::milliseconds(1))
      .WithDegrade(policy)
      .WithTargetRelativeError(0.25);
  serve::SolveTicket ticket = executor.Submit(session, std::move(request));
  Result<SolveResult> result = ticket.Take();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degrade.degraded);
  EXPECT_GT(result->degrade.lower_bound, 0.0);
  EXPECT_TRUE(std::isfinite(result->degrade.relative_error_95));
  EXPECT_GT(result->degrade.relative_error_95, 0.0);
  // Internal consistency of the published relative claim: certified
  // half-width over the certified lower bound (rule-of-three at boundary
  // counts; this run's counts are interior at these sizes).
  const double est = result->degrade.estimate;
  const uint64_t n = result->degrade.samples_used;
  if (est > 0.0 && est < 1.0) {
    const double hw =
        1.96 * std::sqrt(est * (1.0 - est) / static_cast<double>(n));
    EXPECT_DOUBLE_EQ(result->degrade.relative_error_95,
                     hw / result->degrade.lower_bound);
  }
  EXPECT_EQ(GuaranteeOf(*result), Guarantee::kRelative95);
  EXPECT_EQ(ticket.stats().guarantee, Guarantee::kRelative95);
  EXPECT_EQ(executor.stats().results_relative95, 1u);
}

TEST(RelativeError, AbsoluteTargetPathIsUnchanged) {
  // With no relative target the estimator's legacy behavior holds: no
  // lower-bound pre-pass, infinity relative error, absolute-95 provenance.
  Rng rng(kCrosscheckSeedBase + 4400);
  HardCellEnumerationCase hard(&rng, /*edges=*/12);
  SolveOptions options;
  DegradePolicy policy;
  policy.mode = DegradeMode::kOnDeadlineRisk;
  policy.min_samples = 512;
  policy.max_samples = 512;
  options.degrade = policy;
  Result<SolveResult> result = SolveDegradedMonteCarlo(
      PrepareProblem(hard.query, hard.instance), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->degrade.degraded);
  EXPECT_EQ(result->degrade.lower_bound, 0.0);
  EXPECT_EQ(result->degrade.relative_error_95, 0.0)
      << "no relative target: the field stays quiet";
  EXPECT_EQ(result->relative_error_95, 0.0);
  EXPECT_EQ(GuaranteeOf(*result), Guarantee::kAbsolute95);
}

}  // namespace
}  // namespace phom
