#include "src/lineage/cspd.h"

#include <gtest/gtest.h>

#include "src/lineage/dnf_prob.h"
#include "src/util/rng.h"

namespace phom {
namespace {

TEST(WeightedConstraint, SupportAndDefault) {
  WeightedConstraint c({2, 0}, Rational(1, 3));
  EXPECT_EQ(c.vars(), (std::vector<uint32_t>{0, 2}));  // sorted scope
  c.SetWeight(0b01, Rational(5));  // var 0 = 1, var 2 = 0
  EXPECT_EQ(c.Weight(0b01), Rational(5));
  EXPECT_EQ(c.Weight(0b10), Rational(1, 3));  // default
  std::vector<bool> valuation{true, false, false};
  EXPECT_EQ(c.WeightUnder(valuation), Rational(5));
}

TEST(WeightedConstraint, RejectsNegativeWeights) {
  EXPECT_THROW(WeightedConstraint({0}, Rational(-1)), std::logic_error);
  WeightedConstraint c({0}, Rational::One());
  EXPECT_THROW(c.SetWeight(0, Rational(-1, 2)), std::logic_error);
}

TEST(CspdInstance, PartitionFunctionByHand) {
  // One variable, weights 1/4 (true) and 3/4 (false): w = 1.
  CspdInstance instance(1);
  WeightedConstraint c({0}, Rational::Zero());
  c.SetWeight(1, Rational(1, 4));
  c.SetWeight(0, Rational(3, 4));
  instance.AddConstraint(c);
  EXPECT_EQ(instance.PartitionFunctionBruteForce(), Rational::One());

  // Add a hard constraint forbidding x = 1: w = 3/4.
  WeightedConstraint forbid({0}, Rational::One());
  forbid.SetWeight(1, Rational::Zero());
  instance.AddConstraint(forbid);
  EXPECT_EQ(instance.PartitionFunctionBruteForce(), Rational(3, 4));
}

TEST(CspdInstance, HypergraphMirrorsScopes) {
  CspdInstance instance(3);
  WeightedConstraint a({0, 1}, Rational::One());
  WeightedConstraint b({1, 2}, Rational::One());
  instance.AddConstraint(a);
  instance.AddConstraint(b);
  EXPECT_EQ(instance.ToHypergraph().num_hyperedges(), 2u);
  EXPECT_TRUE(instance.IsBetaAcyclic());
}

TEST(Encoding, PaperIdentityOnHandDnf) {
  // ϕ = x0x1 ∨ x2 with π = (1/2, 1/3, 1/4).
  MonotoneDnf dnf(3);
  dnf.AddClause({0, 1});
  dnf.AddClause({2});
  std::vector<Rational> probs{Rational(1, 2), Rational(1, 3), Rational(1, 4)};
  CspdInstance instance = EncodeDnfProbabilityAsCspd(dnf, probs);
  // Appendix B of the paper: Pr(ϕ, π) = 1 − w(I).
  Rational via_cspd = instance.PartitionFunctionBruteForce().Complement();
  EXPECT_EQ(via_cspd, DnfProbabilityBruteForce(dnf, probs));
}

TEST(Encoding, PreservesBetaAcyclicity) {
  Rng rng(301);
  for (int trial = 0; trial < 60; ++trial) {
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(2, 8));
    MonotoneDnf dnf(n);
    // Interval clauses: always β-acyclic.
    for (int c = 0; c < 4; ++c) {
      uint32_t lo = static_cast<uint32_t>(rng.UniformInt(0, n - 1));
      uint32_t hi = static_cast<uint32_t>(rng.UniformInt(lo, n - 1));
      std::vector<uint32_t> clause;
      for (uint32_t v = lo; v <= hi; ++v) clause.push_back(v);
      dnf.AddClause(std::move(clause));
    }
    std::vector<Rational> probs(n, Rational::Half());
    CspdInstance instance = EncodeDnfProbabilityAsCspd(dnf, probs);
    EXPECT_EQ(dnf.IsBetaAcyclic(), instance.IsBetaAcyclic()) << trial;
  }
}

TEST(Encoding, IdentityOnRandomDnfs) {
  // The full Theorem 4.9 appendix identity on random formulas, against two
  // independent DNF engines.
  Rng rng(302);
  for (int trial = 0; trial < 150; ++trial) {
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(1, 9));
    MonotoneDnf dnf(n);
    size_t clauses = rng.UniformInt(1, 5);
    for (size_t c = 0; c < clauses; ++c) {
      std::vector<uint32_t> clause;
      for (int i = 0, w = rng.UniformInt(1, 3); i < w; ++i) {
        clause.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
      }
      dnf.AddClause(std::move(clause));
    }
    std::vector<Rational> probs;
    for (uint32_t i = 0; i < n; ++i) probs.push_back(rng.DyadicProbability(3));
    CspdInstance instance = EncodeDnfProbabilityAsCspd(dnf, probs);
    Rational via_cspd = instance.PartitionFunctionBruteForce().Complement();
    EXPECT_EQ(via_cspd, DnfProbabilityBruteForce(dnf, probs)) << trial;
    EXPECT_EQ(via_cspd, *DnfProbabilityShannon(dnf, probs)) << trial;
  }
}

TEST(Encoding, ConstantTrueDnf) {
  MonotoneDnf dnf(2);
  dnf.AddClause({});
  std::vector<Rational> probs{Rational::Half(), Rational::Half()};
  CspdInstance instance = EncodeDnfProbabilityAsCspd(dnf, probs);
  EXPECT_EQ(instance.PartitionFunctionBruteForce(), Rational::Zero());
}

}  // namespace
}  // namespace phom
