#include "src/graph/cq_parser.h"

#include <gtest/gtest.h>

#include "src/hom/equivalence.h"

namespace phom {
namespace {

TEST(CqParser, PaperExampleQuery) {
  Alphabet alphabet;
  Result<ParsedQuery> q =
      ParseConjunctiveQuery("R(x,y), S(y,z), S(t,z)", &alphabet);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->graph.num_vertices(), 4u);
  EXPECT_EQ(q->graph.num_edges(), 3u);
  EXPECT_EQ(q->variables, (std::vector<std::string>{"x", "y", "z", "t"}));
  LabelId r = *alphabet.Find("R");
  LabelId s = *alphabet.Find("S");
  EXPECT_TRUE(q->graph.HasEdge(0, 1, r));
  EXPECT_TRUE(q->graph.HasEdge(1, 2, s));
  EXPECT_TRUE(q->graph.HasEdge(3, 2, s));
}

TEST(CqParser, WhitespaceAndTrailingComma) {
  Alphabet alphabet;
  Result<ParsedQuery> q =
      ParseConjunctiveQuery("  U( a , b ) ,U(b,c), ", &alphabet);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->graph.num_edges(), 2u);
}

TEST(CqParser, SelfLoopAndRepeatedAtoms) {
  Alphabet alphabet;
  Result<ParsedQuery> q =
      ParseConjunctiveQuery("R(x,x), R(x,x)", &alphabet);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->graph.num_vertices(), 1u);
  EXPECT_EQ(q->graph.num_edges(), 1u);  // idempotent repetition
}

TEST(CqParser, ConflictingLabelsRejected) {
  Alphabet alphabet;
  Result<ParsedQuery> q = ParseConjunctiveQuery("R(x,y), S(x,y)", &alphabet);
  EXPECT_FALSE(q.ok());
}

TEST(CqParser, SyntaxErrors) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseConjunctiveQuery("", &alphabet).ok());
  EXPECT_FALSE(ParseConjunctiveQuery("R(x)", &alphabet).ok());
  EXPECT_FALSE(ParseConjunctiveQuery("R(x,y,z)", &alphabet).ok());
  EXPECT_FALSE(ParseConjunctiveQuery("R(x,y) S(y,z)", &alphabet).ok());
  EXPECT_FALSE(ParseConjunctiveQuery("R(x,y", &alphabet).ok());
  EXPECT_FALSE(ParseConjunctiveQuery("(x,y)", &alphabet).ok());
}

TEST(CqParser, RoundTripThroughFormat) {
  Alphabet alphabet;
  Result<ParsedQuery> q =
      ParseConjunctiveQuery("R(x,y), S(y,z), T(z,x)", &alphabet);
  ASSERT_TRUE(q.ok());
  std::string text = FormatConjunctiveQuery(q->graph, alphabet,
                                            &q->variables);
  Alphabet alphabet2;
  Result<ParsedQuery> q2 = ParseConjunctiveQuery(text, &alphabet2);
  ASSERT_TRUE(q2.ok()) << text;
  EXPECT_EQ(q->graph.num_edges(), q2->graph.num_edges());
  EXPECT_TRUE(*AreEquivalent(q->graph, q2->graph));
}

}  // namespace
}  // namespace phom
