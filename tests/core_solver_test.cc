#include "src/core/solver.h"

#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace phom {
namespace {

using test_util::PaperFigure1;

TEST(Solver, PaperRunningExample) {
  PaperFigure1 ex;
  Solver solver;
  Result<SolveResult> result = solver.Solve(ex.query, ex.instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->probability, ex.expected);
  EXPECT_EQ(result->probability.ToDecimalString(3), "0.574");
}

TEST(Solver, PaperExampleMatchesBruteForce) {
  PaperFigure1 ex;
  SolveOptions force;
  force.force_algorithm = Algorithm::kFallback;
  EXPECT_EQ(*SolveProbability(ex.query, ex.instance, force), ex.expected);
}

TEST(Solver, TrivialAnswers) {
  ProbGraph h = ProbGraph::Certain(MakeOneWayPath(2));
  EXPECT_EQ(*SolveProbability(DiGraph(3), h), Rational::One());
  EXPECT_EQ(*SolveProbability(MakeOneWayPath(1), ProbGraph(0)),
            Rational::Zero());
}

TEST(Solver, LabelRestrictionMakesInstanceTractable) {
  // The instance is a general connected graph, but only its R-edges matter
  // for an R-only query, and those form a 1WP.
  DiGraph q = MakeLabeledPath({0, 0});
  ProbGraph h(4);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::Half());
  AddEdgeOrDie(&h, 2, 0, 1, Rational::Half());  // S-edge closing a cycle
  AddEdgeOrDie(&h, 2, 3, 1, Rational::Half());
  Solver solver;
  Result<SolveResult> result = solver.Solve(q, h);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->analysis.tractable);
  EXPECT_EQ(result->probability, Rational(1, 4));
}

TEST(Solver, Lemma37DisconnectedInstance) {
  // Connected query, instance = two independent 1WP components.
  DiGraph q = MakeOneWayPath(1);
  ProbGraph h(4);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 2, 3, 0, Rational(1, 4));
  // 1 - (1-1/2)(1-1/4) = 5/8.
  EXPECT_EQ(*SolveProbability(q, h), Rational(5, 8));
}

TEST(Solver, MixedComponentClasses) {
  // One 2WP component, one DWT component, connected unlabeled query.
  DiGraph q = MakeOneWayPath(2);
  ProbGraph h(7);
  // Component A: a 2WP  0->1<-2 (no →→ possible).
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 2, 1, 0, Rational::Half());
  // Component B: chain 3->4->5 plus leaf 4->6.
  AddEdgeOrDie(&h, 3, 4, 0, Rational::Half());
  AddEdgeOrDie(&h, 4, 5, 0, Rational::Half());
  AddEdgeOrDie(&h, 4, 6, 0, Rational::Half());
  Solver solver;
  Result<SolveResult> result = solver.Solve(q, h);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->analysis.tractable);
  EXPECT_EQ(result->stats.components, 2u);
  EXPECT_EQ(result->stats.fallback_components, 0u);
  // Component A: 0. Component B: e34 present and (e45 or e46):
  // 1/2 * (1 - 1/4) = 3/8.
  EXPECT_EQ(result->probability, Rational(3, 8));
}

TEST(Solver, DisconnectedLabeledQueryFallsBack) {
  DiGraph q = DisjointUnion({MakeLabeledPath({0}), MakeLabeledPath({1})});
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 1, 2, 1, Rational::Half());
  Solver solver;
  Result<SolveResult> result = solver.Solve(q, h);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->analysis.tractable);
  // Both edges must be present: 1/4.
  EXPECT_EQ(result->probability, Rational(1, 4));
}

TEST(Solver, CertainAndImpossibleEdges) {
  DiGraph q = MakeOneWayPath(2);
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::One());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::Zero());
  EXPECT_EQ(*SolveProbability(q, h), Rational::Zero());
  ProbGraph h2(3);
  AddEdgeOrDie(&h2, 0, 1, 0, Rational::One());
  AddEdgeOrDie(&h2, 1, 2, 0, Rational::One());
  EXPECT_EQ(*SolveProbability(q, h2), Rational::One());
}

TEST(Solver, ForcedAlgorithmsAgree) {
  // An unlabeled 1WP query on a DWT instance sits in several PTIME cells at
  // once; every applicable engine must give the same answer.
  Rng rng(131);
  for (int trial = 0; trial < 30; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomDownwardTree(&rng, rng.UniformInt(2, 10), 1, 0.5), 2);
    DiGraph q = MakeOneWayPath(rng.UniformInt(1, 3));
    Rational dispatched = *SolveProbability(q, h);
    SolveOptions via_fallback;
    via_fallback.force_algorithm = Algorithm::kFallback;
    SolveOptions via_automaton;
    via_automaton.force_algorithm = Algorithm::kUnlabeledPolytree;
    SolveOptions via_grading;
    via_grading.force_algorithm = Algorithm::kUnlabeledDwtInstance;
    SolveOptions via_lineage;
    via_lineage.dwt_via_lineage = true;
    EXPECT_EQ(dispatched, *SolveProbability(q, h, via_fallback)) << trial;
    EXPECT_EQ(dispatched, *SolveProbability(q, h, via_automaton)) << trial;
    EXPECT_EQ(dispatched, *SolveProbability(q, h, via_grading)) << trial;
    EXPECT_EQ(dispatched, *SolveProbability(q, h, via_lineage)) << trial;
  }
}

TEST(Solver, ForcedUnlabeledAlgorithmsRejectLabeledProblems) {
  // The automaton/grading pipelines ignore labels; forcing them on a
  // genuinely labeled problem must fail rather than silently mis-answer.
  DiGraph q = MakeLabeledPath({0, 1});
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 1, 2, 1, Rational::Half());
  for (Algorithm algo : {Algorithm::kUnlabeledPolytree,
                         Algorithm::kUnlabeledDwtInstance}) {
    SolveOptions options;
    options.force_algorithm = algo;
    Result<Rational> r = SolveProbability(q, h, options);
    ASSERT_FALSE(r.ok()) << ToString(algo);
    EXPECT_EQ(r.status().code(), Status::Code::kNotSupported);
  }
}

TEST(Solver, SelfLoopQueryOnForestIsZero) {
  DiGraph q(1);
  AddEdgeOrDie(&q, 0, 0, 0);
  ProbGraph h = ProbGraph::Certain(MakeOneWayPath(4));
  EXPECT_EQ(*SolveProbability(q, h), Rational::Zero());
}

TEST(Solver, IsolatedQueryVerticesAreFree) {
  DiGraph q(3);
  AddEdgeOrDie(&q, 0, 1, 0);  // vertex 2 isolated
  ProbGraph h(2);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  EXPECT_EQ(*SolveProbability(q, h), Rational::Half());
}

TEST(Solver, StatsReporting) {
  Rng rng(132);
  ProbGraph h = AttachRandomProbabilities(
      &rng, RandomTwoWayPath(&rng, 20, 2), 3);
  DiGraph q = RandomTwoWayPath(&rng, 3, 2);
  Solver solver;
  Result<SolveResult> result = solver.Solve(q, h);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.components, 1u);
  EXPECT_GT(result->stats.hom_tests, 0u);
}

}  // namespace
}  // namespace phom
