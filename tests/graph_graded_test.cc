#include "src/graph/graded.h"

#include <gtest/gtest.h>

#include "src/graph/builders.h"

namespace phom {
namespace {

TEST(Graded, PathIsGraded) {
  GradedAnalysis a = AnalyzeGraded(MakeOneWayPath(4));
  ASSERT_TRUE(a.is_graded);
  EXPECT_EQ(a.difference_of_levels, 4);
  // Levels decrease along the path, shifted so the minimum is 0.
  EXPECT_EQ(a.levels, (std::vector<int64_t>{4, 3, 2, 1, 0}));
}

TEST(Graded, TwoWayPathLevels) {
  // a -> b <- c: a and c sit one level above b.
  DiGraph g = MakeArrowPath("><");
  GradedAnalysis a = AnalyzeGraded(g);
  ASSERT_TRUE(a.is_graded);
  EXPECT_EQ(a.difference_of_levels, 1);
}

TEST(Graded, DwtDifferenceEqualsHeight) {
  // Root, a child, a grandchild, plus a second child of the root.
  DiGraph g = MakeDownwardTree({0, 1, 0});
  GradedAnalysis a = AnalyzeGraded(g);
  ASSERT_TRUE(a.is_graded);
  EXPECT_EQ(a.difference_of_levels, 2);
}

TEST(Graded, DirectedCycleIsNotGraded) {
  DiGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 1, 2, 0);
  AddEdgeOrDie(&g, 2, 0, 0);
  EXPECT_FALSE(AnalyzeGraded(g).is_graded);
}

TEST(Graded, SelfLoopIsNotGraded) {
  DiGraph g(1);
  AddEdgeOrDie(&g, 0, 0, 0);
  EXPECT_FALSE(AnalyzeGraded(g).is_graded);
}

TEST(Graded, JumpingEdgeIsNotGraded) {
  // Two directed u->v paths of different lengths (a "diamond" with a chord).
  DiGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 1, 2, 0);
  AddEdgeOrDie(&g, 0, 2, 0);  // jumps a level
  EXPECT_FALSE(AnalyzeGraded(g).is_graded);
}

TEST(Graded, BalancedDiamondIsGraded) {
  // u -> a -> w and u -> b -> w: both paths have length 2.
  DiGraph g(4);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 0, 2, 0);
  AddEdgeOrDie(&g, 1, 3, 0);
  AddEdgeOrDie(&g, 2, 3, 0);
  GradedAnalysis a = AnalyzeGraded(g);
  ASSERT_TRUE(a.is_graded);
  EXPECT_EQ(a.difference_of_levels, 2);
}

TEST(Graded, Figure6Dag) {
  // The DAG of Figure 6: levels 5..0 with one vertex per level depicted on a
  // zig-zag; reconstruct a graded DAG whose difference of levels (5) exceeds
  // the longest root-to-leaf distance from any single root.
  DiGraph g(6);
  AddEdgeOrDie(&g, 0, 1, 0);  // level 5 -> 4
  AddEdgeOrDie(&g, 2, 1, 0);  // level 5 -> 4 (second root)
  AddEdgeOrDie(&g, 1, 3, 0);  // 4 -> 3
  AddEdgeOrDie(&g, 4, 5, 0);  // separate component chain: 1 -> 0
  GradedAnalysis a = AnalyzeGraded(g);
  ASSERT_TRUE(a.is_graded);
  EXPECT_EQ(a.difference_of_levels, 2);
  // Per-component shift: both components have a vertex at level 0.
  EXPECT_EQ(*std::min_element(a.levels.begin(), a.levels.begin() + 4), 0);
  EXPECT_EQ(*std::min_element(a.levels.begin() + 4, a.levels.end()), 0);
}

TEST(Graded, DisconnectedTakesMaxDifference) {
  DiGraph g = DisjointUnion({MakeOneWayPath(2), MakeOneWayPath(5)});
  GradedAnalysis a = AnalyzeGraded(g);
  ASSERT_TRUE(a.is_graded);
  EXPECT_EQ(a.difference_of_levels, 5);
}

TEST(Graded, EdgelessGraph) {
  GradedAnalysis a = AnalyzeGraded(DiGraph(3));
  ASSERT_TRUE(a.is_graded);
  EXPECT_EQ(a.difference_of_levels, 0);
}

TEST(Graded, LevelMappingSatisfiesEdgeConstraint) {
  DiGraph g(5);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 2, 1, 0);
  AddEdgeOrDie(&g, 2, 3, 0);
  AddEdgeOrDie(&g, 4, 3, 0);
  GradedAnalysis a = AnalyzeGraded(g);
  ASSERT_TRUE(a.is_graded);
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(a.levels[e.dst], a.levels[e.src] - 1);
  }
}

}  // namespace
}  // namespace phom
