#include "src/lineage/dnf_prob.h"

#include <gtest/gtest.h>

#include "src/lineage/interval_dp.h"
#include "src/util/rng.h"

namespace phom {
namespace {

std::vector<Rational> HalfProbs(uint32_t n) {
  return std::vector<Rational>(n, Rational::Half());
}

TEST(DnfProb, SingleClause) {
  MonotoneDnf f(3);
  f.AddClause({0, 1, 2});
  std::vector<Rational> probs{Rational::Half(), Rational(1, 4),
                              Rational(3, 4)};
  Rational expected = Rational::Half() * Rational(1, 4) * Rational(3, 4);
  EXPECT_EQ(DnfProbabilityBruteForce(f, probs), expected);
  EXPECT_EQ(DnfProbabilityInclusionExclusion(f, probs), expected);
  EXPECT_EQ(*DnfProbabilityShannon(f, probs), expected);
}

TEST(DnfProb, DisjointClausesUnion) {
  MonotoneDnf f(2);
  f.AddClause({0});
  f.AddClause({1});
  std::vector<Rational> probs{Rational::Half(), Rational(1, 4)};
  Rational expected =
      Rational::One() -
      Rational::Half().Complement() * Rational(1, 4).Complement();
  EXPECT_EQ(DnfProbabilityBruteForce(f, probs), expected);
  EXPECT_EQ(DnfProbabilityInclusionExclusion(f, probs), expected);
  EXPECT_EQ(*DnfProbabilityShannon(f, probs), expected);
}

TEST(DnfProb, ConstantFormulas) {
  MonotoneDnf f(2);
  EXPECT_EQ(*DnfProbabilityShannon(f, HalfProbs(2)), Rational::Zero());
  EXPECT_EQ(DnfProbabilityBruteForce(f, HalfProbs(2)), Rational::Zero());
  f.AddClause({});
  EXPECT_EQ(*DnfProbabilityShannon(f, HalfProbs(2)), Rational::One());
  EXPECT_EQ(DnfProbabilityInclusionExclusion(f, HalfProbs(2)),
            Rational::One());
}

TEST(DnfProb, ZeroAndOneProbabilities) {
  MonotoneDnf f(3);
  f.AddClause({0, 1});
  f.AddClause({2});
  std::vector<Rational> probs{Rational::One(), Rational::Zero(),
                              Rational(1, 3)};
  // Clause {0,1} is dead (p1=0); answer is p2 = 1/3.
  EXPECT_EQ(DnfProbabilityBruteForce(f, probs), Rational(1, 3));
  EXPECT_EQ(*DnfProbabilityShannon(f, probs), Rational(1, 3));
}

TEST(DnfProb, EnginesAgreeOnRandomDnfs) {
  Rng rng(51);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(1, 10));
    MonotoneDnf f(n);
    size_t clauses = rng.UniformInt(1, 6);
    for (size_t c = 0; c < clauses; ++c) {
      std::vector<uint32_t> clause;
      size_t width = rng.UniformInt(1, std::min<int64_t>(n, 4));
      for (size_t i = 0; i < width; ++i) {
        clause.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
      }
      f.AddClause(std::move(clause));
    }
    std::vector<Rational> probs;
    for (uint32_t i = 0; i < n; ++i) {
      probs.push_back(rng.DyadicProbability(3));
    }
    Rational brute = DnfProbabilityBruteForce(f, probs);
    EXPECT_EQ(DnfProbabilityInclusionExclusion(f, probs), brute) << trial;
    EXPECT_EQ(*DnfProbabilityShannon(f, probs), brute) << trial;
    EXPECT_EQ(*DnfProbabilityBetaAcyclic(f, probs), brute) << trial;
    // Order should not matter for correctness: reversed order.
    ShannonOptions rev;
    for (uint32_t v = n; v-- > 0;) rev.variable_order.push_back(v);
    EXPECT_EQ(*DnfProbabilityShannon(f, probs, rev), brute) << trial;
  }
}

TEST(DnfProb, ShannonStatsAndCaching) {
  // A chain x0x1 v x1x2 v ... exercises caching and component splits.
  uint32_t n = 12;
  MonotoneDnf f(n);
  for (uint32_t i = 0; i + 1 < n; ++i) f.AddClause({i, i + 1});
  ShannonStats stats;
  Rational p = *DnfProbabilityShannon(f, HalfProbs(n), {}, &stats);
  EXPECT_GT(stats.states, 0u);
  EXPECT_EQ(p, DnfProbabilityBruteForce(f, HalfProbs(n)));
}

TEST(DnfProb, ShannonStateLimit) {
  // A formula engineered to blow up a tiny state budget.
  uint32_t n = 24;
  MonotoneDnf f(n);
  Rng rng(52);
  for (int c = 0; c < 40; ++c) {
    std::vector<uint32_t> clause;
    for (int i = 0; i < 5; ++i) {
      clause.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
    }
    f.AddClause(std::move(clause));
  }
  ShannonOptions options;
  options.max_states = 3;
  Result<Rational> r = DnfProbabilityShannon(f, HalfProbs(n), options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
}

TEST(IntervalDp, MatchesShannonOnIntervalDnfs) {
  Rng rng(53);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t len = static_cast<uint32_t>(rng.UniformInt(1, 12));
    std::vector<Rational> probs;
    for (uint32_t i = 0; i < len; ++i) {
      probs.push_back(rng.DyadicProbability(3));
    }
    size_t k = rng.UniformInt(1, 5);
    std::vector<EdgeInterval> intervals;
    MonotoneDnf f(len);
    for (size_t c = 0; c < k; ++c) {
      uint32_t lo = static_cast<uint32_t>(rng.UniformInt(0, len - 1));
      uint32_t hi = static_cast<uint32_t>(rng.UniformInt(lo, len - 1));
      intervals.emplace_back(lo, hi);
      std::vector<uint32_t> clause;
      for (uint32_t v = lo; v <= hi; ++v) clause.push_back(v);
      f.AddClause(std::move(clause));
    }
    Rational dp = IntervalDnfProbability(probs, intervals);
    Rational brute = DnfProbabilityBruteForce(f, probs);
    EXPECT_EQ(dp, brute) << "trial " << trial;
  }
}

TEST(IntervalDp, NoIntervals) {
  EXPECT_EQ(IntervalDnfProbability(HalfProbs(3), {}), Rational::Zero());
}

TEST(IntervalDp, FullCover) {
  std::vector<Rational> probs{Rational::Half(), Rational::Half()};
  Rational p = IntervalDnfProbability(probs, {{0, 1}});
  EXPECT_EQ(p, Rational(1, 4));
}

TEST(IntervalDp, DominatedIntervalsIgnored) {
  std::vector<Rational> probs = HalfProbs(4);
  // [1,2] dominates [0,3]; the answer equals just [1,2].
  Rational with_dominated =
      IntervalDnfProbability(probs, {{0, 3}, {1, 2}});
  Rational only_minimal = IntervalDnfProbability(probs, {{1, 2}});
  EXPECT_EQ(with_dominated, only_minimal);
}

TEST(IntervalDp, IntervalLineagesAreBetaAcyclic) {
  // The clause hypergraphs arising in Prop. 4.11 are β-acyclic.
  Rng rng(54);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t len = static_cast<uint32_t>(rng.UniformInt(2, 10));
    MonotoneDnf f(len);
    for (int c = 0; c < 4; ++c) {
      uint32_t lo = static_cast<uint32_t>(rng.UniformInt(0, len - 1));
      uint32_t hi = static_cast<uint32_t>(rng.UniformInt(lo, len - 1));
      std::vector<uint32_t> clause;
      for (uint32_t v = lo; v <= hi; ++v) clause.push_back(v);
      f.AddClause(std::move(clause));
    }
    EXPECT_TRUE(f.IsBetaAcyclic()) << trial;
  }
}

}  // namespace
}  // namespace phom
