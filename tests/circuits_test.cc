#include "src/circuits/circuit.h"

#include <gtest/gtest.h>

#include "src/circuits/dnnf.h"

namespace phom {
namespace {

TEST(Circuit, EvaluateBasics) {
  Circuit c(2);
  uint32_t x = c.AddVar(0);
  uint32_t y = c.AddVar(1);
  uint32_t ny = c.AddNegVar(1);
  uint32_t both = c.AddAnd({x, y});
  uint32_t either = c.AddOr({both, ny});
  EXPECT_TRUE(c.Evaluate(either, {true, true}));
  EXPECT_TRUE(c.Evaluate(either, {false, false}));
  EXPECT_FALSE(c.Evaluate(either, {false, true}));
  EXPECT_EQ(c.NumWires(), 4u);
}

TEST(Circuit, Constants) {
  Circuit c(1);
  uint32_t t = c.AddConst(true);
  uint32_t f = c.AddConst(false);
  EXPECT_TRUE(c.Evaluate(t, {false}));
  EXPECT_FALSE(c.Evaluate(f, {true}));
  uint32_t empty_and = c.AddAnd({});
  uint32_t empty_or = c.AddOr({});
  EXPECT_TRUE(c.Evaluate(empty_and, {false}));
  EXPECT_FALSE(c.Evaluate(empty_or, {false}));
}

TEST(Circuit, InputsMustPrecedeGate) {
  Circuit c(1);
  EXPECT_THROW(c.AddAnd({5}), std::logic_error);
}

TEST(Dnnf, ProbabilityOfDecomposableDeterministicCircuit) {
  // (x AND y) OR (NOT x AND z): deterministic (branches disagree on x),
  // decomposable (x⊥y, x⊥z).
  Circuit c(3);
  uint32_t x = c.AddVar(0);
  uint32_t nx = c.AddNegVar(0);
  uint32_t y = c.AddVar(1);
  uint32_t z = c.AddVar(2);
  uint32_t a = c.AddAnd({x, y});
  uint32_t b = c.AddAnd({nx, z});
  uint32_t root = c.AddOr({a, b});
  std::vector<Rational> probs{Rational::Half(), Rational(1, 4),
                              Rational(3, 4)};
  Rational expected = Rational::Half() * Rational(1, 4) +
                      Rational::Half() * Rational(3, 4);
  EXPECT_EQ(DnnfProbability(c, root, probs), expected);
  EXPECT_TRUE(ValidateDecomposability(c, root).ok());
  EXPECT_TRUE(ValidateDeterminismExhaustive(c, root).ok());
}

TEST(Dnnf, DetectsNonDecomposableAnd) {
  Circuit c(1);
  uint32_t x = c.AddVar(0);
  uint32_t x2 = c.AddVar(0);
  uint32_t root = c.AddAnd({x, x2});
  EXPECT_FALSE(ValidateDecomposability(c, root).ok());
}

TEST(Dnnf, DetectsNonDeterministicOr) {
  Circuit c(2);
  uint32_t x = c.AddVar(0);
  uint32_t y = c.AddVar(1);
  uint32_t root = c.AddOr({x, y});  // both true under (1,1)
  EXPECT_FALSE(ValidateDeterminismExhaustive(c, root).ok());
  EXPECT_TRUE(ValidateDecomposability(c, root).ok());  // OR needs no disjointness
}

TEST(Dnnf, ProbabilityAgreesWithEnumerationOnSmallDnnf) {
  // Build a small d-DNNF and cross-check probability against brute-force
  // enumeration of the circuit's models.
  Circuit c(3);
  uint32_t x = c.AddVar(0);
  uint32_t nx = c.AddNegVar(0);
  uint32_t y = c.AddVar(1);
  uint32_t ny = c.AddNegVar(1);
  uint32_t z = c.AddVar(2);
  uint32_t xy = c.AddAnd({x, y});
  uint32_t xny = c.AddAnd({x, ny, z});
  uint32_t nxz = c.AddAnd({nx, z});
  uint32_t root = c.AddOr({xy, xny, nxz});
  ASSERT_TRUE(ValidateDeterminismExhaustive(c, root).ok());
  ASSERT_TRUE(ValidateDecomposability(c, root).ok());

  std::vector<Rational> probs{Rational(1, 3), Rational(2, 5), Rational(1, 7)};
  Rational expected = Rational::Zero();
  for (uint32_t mask = 0; mask < 8; ++mask) {
    std::vector<bool> a(3);
    for (int i = 0; i < 3; ++i) a[i] = (mask >> i) & 1;
    if (!c.Evaluate(root, a)) continue;
    Rational w = Rational::One();
    for (int i = 0; i < 3; ++i) w *= a[i] ? probs[i] : probs[i].Complement();
    expected += w;
  }
  EXPECT_EQ(DnnfProbability(c, root, probs), expected);
}

}  // namespace
}  // namespace phom
