#include <gtest/gtest.h>

#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

/// Randomized ground-truth testing: for every combination of query class and
/// instance class in Tables 1-3 (plus general graphs), the dispatcher's
/// answer must equal brute-force possible-world enumeration. Parameterized
/// over seeds so the sweep is wide but reproducible.

namespace phom {
namespace {

using test_util::GraphClass;
using test_util::MakeClassGraph;

class SolverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverPropertyTest, DispatcherMatchesBruteForceOracle) {
  Rng rng(GetParam());
  const std::vector<GraphClass>& kinds = test_util::AllGraphClasses();
  Solver solver;
  for (GraphClass qk : kinds) {
    for (GraphClass ik : kinds) {
      for (size_t labels : {1u, 2u}) {
        DiGraph q = MakeClassGraph(qk, &rng, rng.UniformInt(1, 3), labels);
        DiGraph ig = MakeClassGraph(ik, &rng, rng.UniformInt(1, 6), labels);
        if (ig.num_edges() > 14) continue;  // keep the oracle cheap
        ProbGraph h = AttachRandomProbabilities(&rng, ig, 2, 0.25);
        Result<SolveResult> fast = solver.Solve(q, h);
        ASSERT_TRUE(fast.ok()) << fast.status().ToString();
        SolveOptions force;
        force.force_algorithm = Algorithm::kFallback;
        Rational oracle = *SolveProbability(q, h, force);
        EXPECT_EQ(fast->probability, oracle)
            << "query kind " << static_cast<int>(qk) << " instance kind "
            << static_cast<int>(ik) << " labels " << labels << " cell "
            << fast->analysis.cell << " algo "
            << ToString(fast->analysis.algorithm);
      }
    }
  }
}

TEST_P(SolverPropertyTest, ProbabilitiesAreValidAndMonotone) {
  // Raising an edge probability can only raise Pr(G ⇝ H) (monotone query).
  Rng rng(GetParam() + 1000);
  Solver solver;
  for (int trial = 0; trial < 10; ++trial) {
    DiGraph q = RandomTwoWayPath(&rng, rng.UniformInt(1, 3), 1);
    DiGraph ig = RandomPolytree(&rng, rng.UniformInt(3, 8), 1);
    ProbGraph h = AttachRandomProbabilities(&rng, ig, 3);
    Result<SolveResult> base = solver.Solve(q, h);
    ASSERT_TRUE(base.ok());
    EXPECT_TRUE(base->probability.IsProbability());

    // Bump one random edge's probability.
    EdgeId e = static_cast<EdgeId>(rng.UniformInt(0, ig.num_edges() - 1));
    std::vector<Rational> probs = h.probs();
    probs[e] = probs[e] + probs[e].Complement() * Rational::Half();
    ProbGraph h2(h.graph(), probs);
    Result<SolveResult> bumped = solver.Solve(q, h2);
    ASSERT_TRUE(bumped.ok());
    EXPECT_GE(bumped->probability, base->probability);
  }
}

TEST_P(SolverPropertyTest, EquivalentQueriesSameProbability) {
  // Prop. 5.5 in action: a random unlabeled ⊔DWT query and its collapsed
  // path are equivalent, so they agree on every instance.
  Rng rng(GetParam() + 2000);
  Solver solver;
  for (int trial = 0; trial < 10; ++trial) {
    DiGraph q = RandomDisjointUnion(&rng, 2, [&](Rng* r) {
      return RandomDownwardTree(r, 2 + r->UniformInt(0, 4), 1, 0.5);
    });
    GradedAnalysis ga = AnalyzeGraded(q);
    ASSERT_TRUE(ga.is_graded);
    DiGraph collapsed = MakeOneWayPath(
        static_cast<size_t>(ga.difference_of_levels));
    DiGraph ig = RandomPolytree(&rng, rng.UniformInt(3, 9), 1);
    ProbGraph h = AttachRandomProbabilities(&rng, ig, 2);
    EXPECT_EQ(solver.Solve(q, h)->probability,
              solver.Solve(collapsed, h)->probability);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace phom
