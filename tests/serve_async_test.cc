#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/async.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"
#include "src/serve/shard.h"
#include "tests/test_util.h"

/// Tier-1 coverage of the asynchronous serving API (request.h, async.h):
/// submit/collect bit-identity with the serial path, per-request deadlines
/// (expired at submit / in queue / mid-flight), cooperative cancellation
/// (before start / mid-flight / delivered too late), completion callbacks,
/// owned-query lifetimes, and the executor's drain-on-destruction
/// guarantee. Timing-sensitive scenarios are made deterministic with a
/// registry "gate" engine that parks the worker on a latch the test opens.

namespace phom {
namespace {

using serve::BatchExecutor;
using serve::CompletionCallback;
using serve::ExecutorOptions;
using serve::RequestClock;
using serve::RequestStats;
using serve::ShardedServer;
using serve::ShardedServerOptions;
using serve::ShardRequest;
using serve::SolveRequest;
using serve::SolveTicket;
using test_util::MixedServeInstance;
using test_util::MixedServeQueries;

// ---------------------------------------------------------------------------
// The deterministic "slow" engine harness (Gate/GateEngine/GateOpener)
// lives in tests/test_util.h, shared with serve_degrade_test.cc.
// ---------------------------------------------------------------------------

using test_util::GateOpener;
using test_util::TestGate;

void EnsureGateEngineRegistered() {
  test_util::EnsureGateEngineRegistered("async-test-gate");
}

// ---------------------------------------------------------------------------
// Shared corpus + bitwise comparison helper.
// ---------------------------------------------------------------------------

void ExpectResultsBitIdentical(const Result<SolveResult>& serial,
                               const Result<SolveResult>& async,
                               const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(serial.ok(), async.ok());
  if (!serial.ok()) {
    EXPECT_EQ(serial.status().code(), async.status().code());
    EXPECT_EQ(serial.status().message(), async.status().message());
    return;
  }
  EXPECT_EQ(serial->probability, async->probability);
  EXPECT_EQ(std::bit_cast<uint64_t>(serial->probability_double),
            std::bit_cast<uint64_t>(async->probability_double))
      << "double answers must match bit for bit";
  EXPECT_EQ(serial->numeric, async->numeric);
  EXPECT_EQ(serial->stats.engine, async->stats.engine);
  EXPECT_EQ(serial->stats.primary, async->stats.primary);
  EXPECT_EQ(serial->stats.components, async->stats.components);
  EXPECT_EQ(serial->stats.worlds, async->stats.worlds);
  EXPECT_EQ(serial->analysis.cell, async->analysis.cell);
}

// ---------------------------------------------------------------------------
// Submit / Collect: the headline bit-identity guarantee.
// ---------------------------------------------------------------------------

class AsyncDeterminismTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AsyncDeterminismTest, SubmitCollectBitIdenticalToSerial) {
  const size_t threads = GetParam();
  for (NumericBackend backend :
       {NumericBackend::kExact, NumericBackend::kDouble}) {
    Rng rng(20170514);
    ProbGraph instance = MixedServeInstance(&rng);
    std::vector<DiGraph> queries = MixedServeQueries(&rng);
    // Repeat the batch so label-set cache hits occur mid-batch.
    std::vector<DiGraph> batch = queries;
    batch.insert(batch.end(), queries.begin(), queries.end());

    SolveOptions options;
    options.numeric = backend;

    EvalSession serial_session(instance, options);
    std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);

    ExecutorOptions exec_options;
    exec_options.threads = threads;
    BatchExecutor executor(exec_options);
    EvalSession async_session(instance, options);
    std::vector<SolveRequest> requests;
    requests.reserve(batch.size());
    for (const DiGraph& q : batch) requests.push_back(SolveRequest(q));
    std::vector<SolveTicket> tickets =
        executor.SubmitBatch(async_session, std::move(requests));
    std::vector<Result<SolveResult>> async = BatchExecutor::Collect(tickets);

    std::string label = std::string("backend=") + ToString(backend) +
                        " threads=" + std::to_string(threads);
    ASSERT_EQ(serial.size(), async.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectResultsBitIdentical(serial[i], async[i],
                                label + " query " + std::to_string(i));
    }
    // Session accounting is deterministic too: preparation happens on the
    // submitting thread in batch order.
    EXPECT_EQ(serial_session.stats().queries, async_session.stats().queries);
    EXPECT_EQ(serial_session.stats().instance_preparations,
              async_session.stats().instance_preparations);
    EXPECT_EQ(serial_session.stats().context_cache_hits,
              async_session.stats().context_cache_hits);
    // Per-request timelines settled and are ordered sanely.
    for (SolveTicket& t : tickets) {
      ASSERT_TRUE(t.done());
      RequestStats stats = t.stats();
      EXPECT_LE(stats.enqueued, stats.started);
      EXPECT_LE(stats.started, stats.finished);
      EXPECT_GE(stats.total_time().count(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, AsyncDeterminismTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "Threads" + std::to_string(info.param);
                         });

TEST(AsyncSubmit, OwnedQueriesOutliveCallerScope) {
  // The lifetime fix: requests own their query, so the caller's batch
  // vector may die while requests are still in flight (ASan-verified).
  Rng rng(77);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession serial_session(instance);
  EvalSession async_session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 2});

  std::vector<Result<SolveResult>> serial;
  std::vector<SolveTicket> tickets;
  {
    std::vector<DiGraph> local = MixedServeQueries(&rng);
    serial = serial_session.SolveBatch(local);
    for (DiGraph& q : local) {
      tickets.push_back(executor.Submit(async_session, SolveRequest(std::move(q))));
    }
  }  // the batch vector and its graphs are gone; the requests live on
  std::vector<Result<SolveResult>> async = BatchExecutor::Collect(tickets);
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectResultsBitIdentical(serial[i], async[i],
                              "owned query " + std::to_string(i));
  }
}

TEST(AsyncSubmit, SubmissionReturnsBeforeCompletion) {
  EnsureGateEngineRegistered();
  TestGate()->Reset();
  Rng rng(5);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});
  GateOpener opener;  // after the executor: failure-proofs the drain

  SolveRequest request(MakeLabeledPath({0}));
  request.WithEngine("async-test-gate");
  SolveTicket ticket = executor.Submit(session, std::move(request));
  TestGate()->AwaitEntered(1);  // the worker is inside the solve
  EXPECT_FALSE(ticket.done()) << "Submit must not wait for the solve";
  EXPECT_FALSE(ticket.WaitFor(std::chrono::milliseconds(1)));

  TestGate()->Open();
  ticket.Wait();
  ASSERT_TRUE(ticket.done());
  Result<SolveResult> result = ticket.Get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.engine, "async-test-gate");
  EXPECT_EQ(result->probability_double, 0.5);
  RequestStats stats = ticket.stats();
  EXPECT_FALSE(stats.expired_before_start);
  EXPECT_FALSE(stats.cancelled_before_start);
  EXPECT_LE(stats.enqueued, stats.started);
  EXPECT_LE(stats.started, stats.finished);
}

TEST(AsyncSubmit, PerRequestOverridesMatchSerialOverriddenSolve) {
  Rng rng(99);
  ProbGraph instance = MixedServeInstance(&rng);
  SolveOptions base;  // exact backend, auto engines
  base.monte_carlo.samples = 200;
  EvalSession serial_session(instance, base);
  EvalSession async_session(instance, base);
  BatchExecutor executor(ExecutorOptions{.threads = 2});

  DiGraph query = MakeLabeledPath({0, 1});
  std::vector<SolveOverrides> overrides(3);
  overrides[1].numeric = NumericBackend::kDouble;
  overrides[2].force_engine = "monte-carlo";
  overrides[2].monte_carlo_seed = 777;

  std::vector<SolveTicket> tickets;
  for (const SolveOverrides& o : overrides) {
    SolveRequest request(query);
    request.overrides = o;
    tickets.push_back(executor.Submit(async_session, std::move(request)));
  }
  std::vector<Result<SolveResult>> async = BatchExecutor::Collect(tickets);
  for (size_t i = 0; i < overrides.size(); ++i) {
    // EvalSession::Solve(query, overrides) is the serial twin of the
    // per-request override path.
    ExpectResultsBitIdentical(serial_session.Solve(query, overrides[i]),
                              async[i], "override " + std::to_string(i));
  }
}

TEST(AsyncSubmit, CompletionCallbacksFireExactlyOnceWithTheResult) {
  Rng rng(11);
  ProbGraph instance = MixedServeInstance(&rng);
  std::vector<DiGraph> queries = MixedServeQueries(&rng);
  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 2});

  std::mutex mu;
  std::vector<int> calls(queries.size(), 0);
  std::vector<double> seen(queries.size(), -1.0);
  std::vector<bool> seen_ok(queries.size(), false);
  std::vector<SolveTicket> tickets;
  for (size_t i = 0; i < queries.size(); ++i) {
    tickets.push_back(executor.Submit(
        session, SolveRequest(queries[i]),
        [&, i](const Result<SolveResult>& result, const RequestStats&) {
          std::lock_guard<std::mutex> lock(mu);
          ++calls[i];
          seen_ok[i] = result.ok();
          if (result.ok()) seen[i] = result->probability_double;
        }));
  }
  std::vector<Result<SolveResult>> results = BatchExecutor::Collect(tickets);
  std::lock_guard<std::mutex> lock(mu);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(calls[i], 1) << "callback " << i << " must fire exactly once";
    ASSERT_EQ(seen_ok[i], results[i].ok());
    if (results[i].ok()) {
      EXPECT_EQ(std::bit_cast<uint64_t>(seen[i]),
                std::bit_cast<uint64_t>(results[i]->probability_double));
    }
  }
}

// ---------------------------------------------------------------------------
// Deadlines.
// ---------------------------------------------------------------------------

TEST(AsyncDeadline, AlreadyExpiredAtSubmitFailsFastWithoutPreparing) {
  Rng rng(13);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});

  SolveRequest request(MakeLabeledPath({0}));
  request.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1));
  SolveTicket ticket = executor.Submit(session, std::move(request));
  ASSERT_TRUE(ticket.done()) << "fail-fast completes during Submit";
  EXPECT_EQ(ticket.Get().status().code(), Status::Code::kDeadlineExceeded);
  RequestStats stats = ticket.stats();
  EXPECT_TRUE(stats.expired_before_start);
  EXPECT_FALSE(stats.cancelled_before_start);
  EXPECT_EQ(session.stats().queries, 0u)
      << "nothing was prepared: the session never saw the request";
}

TEST(AsyncDeadline, ExpiryInQueueLaterRequestsStillServed) {
  EnsureGateEngineRegistered();
  TestGate()->Reset();
  Rng rng(17);
  ProbGraph instance = MixedServeInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});
  EvalSession serial_session(instance);
  Result<SolveResult> serial = serial_session.Solve(query);

  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});
  GateOpener opener;

  // Park the lone worker, so the doomed request waits in the queue past its
  // deadline.
  SolveRequest blocker(MakeLabeledPath({0}));
  blocker.WithEngine("async-test-gate");
  SolveTicket blocked = executor.Submit(session, std::move(blocker));
  TestGate()->AwaitEntered(1);

  SolveRequest doomed(query);
  const RequestClock::time_point deadline =
      RequestClock::now() + std::chrono::milliseconds(50);
  doomed.WithDeadline(deadline);
  // split_components fans this query into 3 tasks; gate them all behind the
  // deadline by disabling nothing — the worker is parked either way.
  SolveTicket late = executor.Submit(session, std::move(doomed));
  SolveRequest healthy(query);  // same query, no deadline: must be served
  SolveTicket served = executor.Submit(session, std::move(healthy));

  std::this_thread::sleep_until(deadline + std::chrono::milliseconds(5));
  TestGate()->Open();

  EXPECT_EQ(late.Get().status().code(), Status::Code::kDeadlineExceeded)
      << "expired at dequeue, without solving";
  RequestStats late_stats = late.stats();
  EXPECT_TRUE(late_stats.expired_before_start);
  ExpectResultsBitIdentical(serial, served.Get(),
                            "request behind an expired neighbor");
  ASSERT_TRUE(blocked.Get().ok());
}

TEST(AsyncDeadline, ExpiryMidFlightBetweenComponentTasks) {
  Rng rng(19);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  // One worker, parked by the test_after_fanout hook right after it fanned
  // the componentwise request out and ran the FIRST component — so work
  // provably starts before the deadline passes, and the remaining
  // components expire at dequeue once the worker resumes.
  std::mutex mu;
  std::condition_variable cv;
  bool fanned = false;
  bool resume = false;
  ExecutorOptions exec_options;
  exec_options.threads = 1;
  exec_options.test_after_fanout = [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    fanned = true;
    cv.notify_all();
    cv.wait(lock, [&] { return resume; });
  };
  BatchExecutor executor(exec_options);

  SolveRequest doomed(MakeLabeledPath({0, 1}));  // 3 instance components
  const RequestClock::time_point deadline =
      RequestClock::now() + std::chrono::milliseconds(250);
  doomed.WithDeadline(deadline);
  SolveTicket late = executor.Submit(session, std::move(doomed));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return fanned; });
  }
  std::this_thread::sleep_until(deadline + std::chrono::milliseconds(5));
  {
    std::lock_guard<std::mutex> lock(mu);
    resume = true;
  }
  cv.notify_all();

  EXPECT_EQ(late.Get().status().code(), Status::Code::kDeadlineExceeded);
  RequestStats stats = late.stats();
  EXPECT_FALSE(stats.expired_before_start)
      << "the first component ran at fan-out: the expiry was mid-flight";
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(AsyncCancel, BeforeStartCancelsWithoutSolving) {
  EnsureGateEngineRegistered();
  TestGate()->Reset();
  Rng rng(23);
  ProbGraph instance = MixedServeInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});
  EvalSession serial_session(instance);
  Result<SolveResult> serial = serial_session.Solve(query);

  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});
  GateOpener opener;

  SolveRequest blocker(MakeLabeledPath({0}));
  blocker.WithEngine("async-test-gate");
  SolveTicket blocked = executor.Submit(session, std::move(blocker));
  TestGate()->AwaitEntered(1);

  SolveTicket cancelled = executor.Submit(session, SolveRequest(query));
  SolveTicket served = executor.Submit(session, SolveRequest(query));
  EXPECT_TRUE(cancelled.Cancel()) << "delivered before completion";
  TestGate()->Open();

  EXPECT_EQ(cancelled.Get().status().code(), Status::Code::kCancelled);
  EXPECT_TRUE(cancelled.stats().cancelled_before_start);
  EXPECT_FALSE(cancelled.stats().expired_before_start);
  ExpectResultsBitIdentical(serial, served.Get(),
                            "request behind a cancelled neighbor");
  ASSERT_TRUE(blocked.Get().ok());
}

TEST(AsyncCancel, MidFlightBetweenComponentTasks) {
  Rng rng(29);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  // Same parking trick as the deadline twin: the worker fans out, runs the
  // first component (work starts), and parks in the hook — the cancel then
  // lands between component tasks, before the worker reaches the rest.
  std::mutex mu;
  std::condition_variable cv;
  bool fanned = false;
  bool resume = false;
  ExecutorOptions exec_options;
  exec_options.threads = 1;
  exec_options.test_after_fanout = [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    fanned = true;
    cv.notify_all();
    cv.wait(lock, [&] { return resume; });
  };
  BatchExecutor executor(exec_options);

  SolveTicket cancelled =
      executor.Submit(session, SolveRequest(MakeLabeledPath({0, 1})));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return fanned; });
  }
  EXPECT_TRUE(cancelled.Cancel());  // the parked worker has not finished it
  {
    std::lock_guard<std::mutex> lock(mu);
    resume = true;
  }
  cv.notify_all();

  EXPECT_EQ(cancelled.Get().status().code(), Status::Code::kCancelled);
  EXPECT_FALSE(cancelled.stats().cancelled_before_start)
      << "the first component ran at fan-out: the cancel was mid-flight";
}

TEST(AsyncCancel, DeliveredTooLateIsBenign) {
  EnsureGateEngineRegistered();
  TestGate()->Reset();
  Rng rng(31);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});
  GateOpener opener;

  SolveRequest request(MakeLabeledPath({0}));
  request.WithEngine("async-test-gate");
  SolveTicket ticket = executor.Submit(session, std::move(request));
  TestGate()->AwaitEntered(1);  // the solve is past every yield point
  EXPECT_TRUE(ticket.Cancel()) << "delivered before completion...";
  TestGate()->Open();
  Result<SolveResult> result = ticket.Get();
  ASSERT_TRUE(result.ok()) << "...but cooperative: the solve completes";
  EXPECT_EQ(result->probability_double, 0.5);
  EXPECT_FALSE(ticket.stats().cancelled_before_start);
}

TEST(AsyncCancel, SerialCancelTokenHookInterruptsComponentwiseSolve) {
  // The core-layer half of the feature: SolveOptions::cancel is honored by
  // the serial componentwise dispatch too (same yield points).
  Rng rng(37);
  ProbGraph instance = MixedServeInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});

  CancelToken cancelled;
  cancelled.Cancel();
  SolveOptions with_cancel;
  with_cancel.cancel = &cancelled;
  EXPECT_EQ(Solver(with_cancel).Solve(query, instance).status().code(),
            Status::Code::kCancelled);

  CancelToken expired;
  expired.SetDeadline(CancelToken::Clock::now() - std::chrono::seconds(1));
  SolveOptions with_deadline;
  with_deadline.cancel = &expired;
  EXPECT_EQ(Solver(with_deadline).Solve(query, instance).status().code(),
            Status::Code::kDeadlineExceeded);

  // A token that never fires changes nothing, bit for bit.
  CancelToken idle;
  idle.SetDeadline(CancelToken::Clock::now() + std::chrono::hours(1));
  SolveOptions with_idle;
  with_idle.cancel = &idle;
  Result<SolveResult> gated = Solver(with_idle).Solve(query, instance);
  Result<SolveResult> plain = Solver(SolveOptions{}).Solve(query, instance);
  ExpectResultsBitIdentical(plain, gated, "idle token");
}

// ---------------------------------------------------------------------------
// Drain-on-destruction (was: documented UB).
// ---------------------------------------------------------------------------

TEST(ExecutorDrain, DestructorCompletesOutstandingTickets) {
  Rng rng(20260729);
  ProbGraph instance = MixedServeInstance(&rng);
  std::vector<DiGraph> queries = MixedServeQueries(&rng);
  EvalSession serial_session(instance);
  std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(queries);

  EvalSession session(instance);
  std::vector<SolveTicket> tickets;
  {
    BatchExecutor executor(ExecutorOptions{.threads = 2});
    std::vector<SolveRequest> requests;
    for (const DiGraph& q : queries) requests.push_back(SolveRequest(q));
    tickets = executor.SubmitBatch(session, std::move(requests));
  }  // destroyed with requests in flight: drains instead of UB
  ASSERT_EQ(tickets.size(), serial.size());
  for (size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].done())
        << "the destructor must complete ticket " << i;
    ExpectResultsBitIdentical(serial[i], tickets[i].Take(),
                              "drained ticket " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// ShardedServer's async front door.
// ---------------------------------------------------------------------------

TEST(ShardedServerAsync, SubmitRoutesCollectsAndRejectsPerRequest) {
  Rng rng(41);
  ProbGraph instance_a = MixedServeInstance(&rng);
  ProbGraph instance_b = MixedServeInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});

  EvalSession serial_a(instance_a);
  EvalSession serial_b(instance_b);
  Result<SolveResult> expected_a = serial_a.Solve(query);
  Result<SolveResult> expected_b = serial_b.Solve(query);

  ShardedServerOptions options;
  options.executor.threads = 2;
  ShardedServer server({instance_a, instance_b}, options);

  std::vector<SolveRequest> requests;
  requests.push_back(SolveRequest(query, 0));
  requests.push_back(SolveRequest(query, 1));
  requests.push_back(SolveRequest(query, 7));  // out of range
  requests.push_back(
      SolveRequest(std::shared_ptr<const DiGraph>(), 0));  // null query
  std::vector<SolveTicket> tickets = server.SubmitBatch(std::move(requests));
  std::vector<Result<SolveResult>> results = server.Collect(tickets);

  ASSERT_EQ(results.size(), 4u);
  ExpectResultsBitIdentical(expected_a, results[0], "shard 0");
  ExpectResultsBitIdentical(expected_b, results[1], "shard 1");
  EXPECT_EQ(results[2].status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(results[3].status().code(), Status::Code::kInvalidArgument);

  // Rejection callbacks fire inline, before Submit returns.
  int rejected_calls = 0;
  SolveTicket rejected = server.Submit(
      SolveRequest(query, 9),
      [&rejected_calls](const Result<SolveResult>& result,
                        const RequestStats&) {
        ++rejected_calls;
        EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
      });
  EXPECT_EQ(rejected_calls, 1);
  ASSERT_TRUE(rejected.done());

  // The synchronous wrappers are submit+wait over the same path.
  std::vector<ShardRequest> sync_requests = {{0, &query}, {1, &query}};
  std::vector<Result<SolveResult>> sync = server.SolveRequests(sync_requests);
  ExpectResultsBitIdentical(expected_a, sync[0], "sync wrapper shard 0");
  ExpectResultsBitIdentical(expected_b, sync[1], "sync wrapper shard 1");
}

TEST(ShardedServerAsync, DeadlinedRequestsDoNotDisturbTheBatch) {
  Rng rng(43);
  ProbGraph instance = MixedServeInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});
  EvalSession serial_session(instance);
  Result<SolveResult> expected = serial_session.Solve(query);

  ShardedServerOptions options;
  options.executor.threads = 2;
  ShardedServer server({instance}, options);

  std::vector<SolveRequest> requests;
  requests.push_back(SolveRequest(query, 0));
  SolveRequest doomed(query, 0);
  doomed.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1));
  requests.push_back(std::move(doomed));
  requests.push_back(SolveRequest(query, 0));
  std::vector<SolveTicket> tickets = server.SubmitBatch(std::move(requests));
  std::vector<Result<SolveResult>> results = server.Collect(tickets);

  ExpectResultsBitIdentical(expected, results[0], "before the doomed request");
  EXPECT_EQ(results[1].status().code(), Status::Code::kDeadlineExceeded);
  ExpectResultsBitIdentical(expected, results[2], "after the doomed request");
  EXPECT_TRUE(tickets[1].stats().expired_before_start);
}

}  // namespace
}  // namespace phom
