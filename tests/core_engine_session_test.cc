#include <gtest/gtest.h>

#include <vector>

#include "src/core/engine.h"
#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

/// Tier-1 coverage of the engine registry and the amortized session layer:
/// registry lookup/forcing semantics, EvalSession bit-equality with one-shot
/// solving, and the exactly-once instance-preparation guarantee.

namespace phom {
namespace {

using test_util::CellClass;
using test_util::kCrosscheckSeedBase;
using test_util::MakeCrosscheckCase;
using test_util::PaperFigure1;
using test_util::ToString;

TEST(EngineRegistry, DefaultEnginesAreRegistered) {
  const EngineRegistry& registry = EngineRegistry::Global();
  for (const char* name :
       {"connected-on-2wp", "path-on-dwt", "unlabeled-dwt-instance",
        "unlabeled-polytree", "per-component", "fallback",
        "dwt-lineage-shannon", "match-lineage", "monte-carlo"}) {
    EXPECT_NE(registry.FindByName(name), nullptr) << name;
  }
  EXPECT_EQ(registry.FindByName("no-such-engine"), nullptr);
  // Algorithm lookup resolves to the first (primary) engine.
  const Engine* fallback = registry.FindByAlgorithm(Algorithm::kFallback);
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->name(), "fallback");
  const Engine* dwt = registry.FindByAlgorithm(Algorithm::kPathOnDwt);
  ASSERT_NE(dwt, nullptr);
  EXPECT_EQ(dwt->name(), "path-on-dwt");
  // Estimators are never eligible for auto dispatch.
  const Engine* mc = registry.FindByName("monte-carlo");
  ASSERT_NE(mc, nullptr);
  EXPECT_FALSE(mc->exact());
}

TEST(EngineRegistry, ForceEngineByName) {
  PaperFigure1 ex;
  // The running example's restricted instance is a general connected graph,
  // so the applicable engines are the per-component/per-world ones.
  for (const char* name : {"per-component", "fallback", "match-lineage"}) {
    SolveOptions options;
    options.force_engine = name;
    Result<SolveResult> r = Solver(options).Solve(ex.query, ex.instance);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    EXPECT_EQ(r->probability, ex.expected) << name;
    EXPECT_EQ(r->stats.engine, name);
  }
  // A 2WP cell exercises the fine engine by name.
  {
    DiGraph q = MakeOneWayPath(2);
    ProbGraph h(3);
    AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
    AddEdgeOrDie(&h, 1, 2, 0, Rational::Half());
    SolveOptions options;
    options.force_engine = "connected-on-2wp";
    Result<SolveResult> r = Solver(options).Solve(q, h);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->probability, Rational(1, 4));
    EXPECT_EQ(r->stats.engine, "connected-on-2wp");
  }
  // Unknown engines are an Invalid error, inapplicable ones NotSupported.
  SolveOptions unknown;
  unknown.force_engine = "no-such-engine";
  EXPECT_EQ(Solver(unknown).Solve(ex.query, ex.instance).status().code(),
            Status::Code::kInvalidArgument);
  // ... even when the answer would be immediate (typos must not be masked
  // by a trivial first input).
  EXPECT_EQ(Solver(unknown).Solve(DiGraph(2), ex.instance).status().code(),
            Status::Code::kInvalidArgument);
  SolveOptions inapplicable;
  inapplicable.force_engine = "unlabeled-polytree";  // two labels in use
  EXPECT_EQ(Solver(inapplicable).Solve(ex.query, ex.instance).status().code(),
            Status::Code::kNotSupported);
}

TEST(EngineRegistry, AutoDispatchReportsEngineName) {
  // The selected engine is surfaced in SolveStats for every dispatch path.
  Rng rng(4711);
  ProbGraph twp = AttachRandomProbabilities(
      &rng, RandomTwoWayPath(&rng, 8, 1), 3);
  Result<SolveResult> r = Solver().Solve(MakeOneWayPath(1), twp);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.engine, "connected-on-2wp");

  PaperFigure1 ex;
  Result<SolveResult> hard = Solver().Solve(ex.query, ex.instance);
  ASSERT_TRUE(hard.ok());
  EXPECT_EQ(hard->stats.engine, "per-component");
}

class SessionAgreementTest : public ::testing::TestWithParam<CellClass> {};

TEST_P(SessionAgreementTest, SessionAnswersBitIdenticalToOneShot) {
  CellClass cell = GetParam();
  Rng rng(kCrosscheckSeedBase + 3000 + static_cast<uint64_t>(cell));
  // One instance, a batch of queries from the same cell generator.
  test_util::CrosscheckCase base = MakeCrosscheckCase(cell, &rng);
  std::vector<DiGraph> queries;
  queries.push_back(base.query);
  for (int i = 0; i < 7; ++i) {
    queries.push_back(MakeCrosscheckCase(cell, &rng).query);
  }

  EvalSession session(base.instance);
  std::vector<Result<SolveResult>> batch = session.SolveBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  EXPECT_EQ(session.stats().queries, queries.size());

  Solver one_shot;
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<SolveResult> direct = one_shot.Solve(queries[i], base.instance);
    ASSERT_EQ(batch[i].ok(), direct.ok()) << ToString(cell) << " query " << i;
    if (!direct.ok()) continue;
    EXPECT_EQ(batch[i]->probability, direct->probability)
        << ToString(cell) << " query " << i;
    EXPECT_EQ(batch[i]->probability_double, direct->probability_double);
    EXPECT_EQ(batch[i]->stats.engine, direct->stats.engine);
    EXPECT_EQ(batch[i]->analysis.cell, direct->analysis.cell);
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, SessionAgreementTest,
                         ::testing::ValuesIn(test_util::AllCellClasses()),
                         [](const ::testing::TestParamInfo<CellClass>& info) {
                           switch (info.param) {
                             case CellClass::k2wp: return "TwoWayPath";
                             case CellClass::kDwt: return "DownwardTree";
                             case CellClass::kPolytree: return "Polytree";
                             case CellClass::kHardCell: return "HardCell";
                           }
                           return "Unknown";
                         });

TEST(EvalSession, PreparesInstanceExactlyOncePerLabelSet) {
  PaperFigure1 ex;
  EvalSession session(ex.instance);
  // N queries over the same label set {R, S}: exactly ONE preparation.
  for (int i = 0; i < 10; ++i) {
    Result<SolveResult> r = session.Solve(ex.query);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->probability, ex.expected);
  }
  EXPECT_EQ(session.stats().queries, 10u);
  EXPECT_EQ(session.stats().instance_preparations, 1u);
  EXPECT_EQ(session.stats().context_cache_hits, 9u);

  // A different label set builds its own context once.
  DiGraph r_only = MakeLabeledPath({0});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.Solve(r_only).ok());
  }
  EXPECT_EQ(session.stats().instance_preparations, 2u);
  EXPECT_EQ(session.stats().context_cache_hits, 11u);

  // Trivial queries never touch the instance side.
  ASSERT_TRUE(session.Solve(DiGraph(2)).ok());
  EXPECT_EQ(session.stats().instance_preparations, 2u);
}

TEST(Solver, SolveProbabilityStaysExactUnderDoubleOptions) {
  // The Rational-returning convenience must not silently answer zero when
  // handed serving options that select the double backend.
  PaperFigure1 ex;
  SolveOptions serving;
  serving.numeric = NumericBackend::kDouble;
  Result<Rational> p = SolveProbability(ex.query, ex.instance, serving);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, ex.expected);
}

TEST(EvalSession, DoubleBackendSessions) {
  PaperFigure1 ex;
  SolveOptions options;
  options.numeric = NumericBackend::kDouble;
  EvalSession session(ex.instance, options);
  Result<SolveResult> r = session.Solve(ex.query);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->numeric, NumericBackend::kDouble);
  EXPECT_NEAR(r->probability_double, 0.574, 1e-12);
}

}  // namespace
}  // namespace phom
