#include "src/reductions/edge_cover_reduction.h"

#include <gtest/gtest.h>

#include "src/core/fallback.h"
#include "src/graph/classify.h"

namespace phom {
namespace {

BipartiteGraph TriangleExample() {
  // The bipartite graph of Figure 5: X = {x1, x2}, Y = {y1, y2, y3},
  // E = {(x1,y1), (x1,y2), (x2,y2), (x2,y3)}  (a concrete 4-edge instance).
  BipartiteGraph g;
  g.left_size = 2;
  g.right_size = 3;
  g.edges = {{0, 0}, {0, 1}, {1, 1}, {1, 2}};
  return g;
}

TEST(EdgeCoverBrute, SmallGraphsByHand) {
  // Single edge between two vertices: the only cover is {e}.
  BipartiteGraph g;
  g.left_size = 1;
  g.right_size = 1;
  g.edges = {{0, 0}};
  EXPECT_EQ(CountEdgeCoversBruteForce(g), BigInt(1));
  // Two parallel-ish edges from one left vertex to two right vertices:
  // both edges must be present (each right vertex needs cover) -> 1 cover.
  g.right_size = 2;
  g.edges = {{0, 0}, {0, 1}};
  EXPECT_EQ(CountEdgeCoversBruteForce(g), BigInt(1));
  // K_{2,2}: covers of the 4-cycle = 7.
  g.left_size = 2;
  g.right_size = 2;
  g.edges = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(CountEdgeCoversBruteForce(g), BigInt(7));
  // Isolated vertex -> zero covers.
  g.right_size = 3;
  EXPECT_EQ(CountEdgeCoversBruteForce(g), BigInt(0));
}

TEST(EdgeCoverReduction, LabeledShapesMatchProp33) {
  EdgeCoverReduction red = BuildEdgeCoverReductionLabeled(TriangleExample());
  EXPECT_TRUE(IsOneWayPath(red.instance.graph()));
  Classification qc = Classify(red.query);
  EXPECT_TRUE(qc.all_1wp);
  EXPECT_FALSE(qc.connected);  // 5 components: one per bipartite vertex
  EXPECT_EQ(qc.num_components, 5u);
  EXPECT_EQ(red.num_probabilistic_edges, 4u);
  EXPECT_EQ(red.instance.NumUncertainEdges(), 4u);
}

TEST(EdgeCoverReduction, LabeledRecoversExactCount) {
  Rng rng(71);
  for (int trial = 0; trial < 12; ++trial) {
    BipartiteGraph g = RandomBipartite(&rng, rng.UniformInt(1, 3),
                                       rng.UniformInt(1, 3), 0.5);
    if (g.edges.size() > 8) continue;
    EdgeCoverReduction red = BuildEdgeCoverReductionLabeled(g);
    FallbackOptions options;
    Result<Rational> prob =
        SolveByWorldEnumeration(red.query, red.instance, options);
    ASSERT_TRUE(prob.ok()) << prob.status().ToString();
    EXPECT_EQ(RecoverCount(*prob, red.num_probabilistic_edges),
              CountEdgeCoversBruteForce(g))
        << "trial " << trial;
  }
}

TEST(EdgeCoverReduction, UnlabeledShapesMatchProp34) {
  EdgeCoverReduction red =
      BuildEdgeCoverReductionUnlabeled(TriangleExample());
  EXPECT_TRUE(IsTwoWayPath(red.instance.graph()));
  EXPECT_TRUE(red.instance.graph().UsesSingleLabel());
  EXPECT_TRUE(red.query.UsesSingleLabel());
  Classification qc = Classify(red.query);
  EXPECT_TRUE(qc.all_2wp);
  EXPECT_FALSE(qc.all_1wp);
  EXPECT_FALSE(qc.connected);
  EXPECT_EQ(red.instance.NumUncertainEdges(), 4u);
}

TEST(EdgeCoverReduction, UnlabeledRecoversExactCount) {
  Rng rng(72);
  for (int trial = 0; trial < 8; ++trial) {
    BipartiteGraph g = RandomBipartite(&rng, rng.UniformInt(1, 2),
                                       rng.UniformInt(1, 3), 0.6);
    if (g.edges.size() > 6) continue;
    EdgeCoverReduction red = BuildEdgeCoverReductionUnlabeled(g);
    Result<Rational> prob =
        SolveByWorldEnumeration(red.query, red.instance, {});
    ASSERT_TRUE(prob.ok()) << prob.status().ToString();
    EXPECT_EQ(RecoverCount(*prob, red.num_probabilistic_edges),
              CountEdgeCoversBruteForce(g))
        << "trial " << trial;
  }
}

TEST(EdgeCoverReduction, LabeledAndUnlabeledAgree) {
  Rng rng(73);
  for (int trial = 0; trial < 6; ++trial) {
    BipartiteGraph g = RandomBipartite(&rng, 2, 2, 0.6);
    if (g.edges.size() > 5) continue;
    EdgeCoverReduction labeled = BuildEdgeCoverReductionLabeled(g);
    EdgeCoverReduction unlabeled = BuildEdgeCoverReductionUnlabeled(g);
    Rational p1 =
        *SolveByWorldEnumeration(labeled.query, labeled.instance, {});
    Rational p2 =
        *SolveByWorldEnumeration(unlabeled.query, unlabeled.instance, {});
    EXPECT_EQ(p1, p2) << "trial " << trial;
  }
}

TEST(RecoverCount, ChecksIntegrality) {
  EXPECT_EQ(RecoverCount(Rational(3, 8), 3), BigInt(3));
  EXPECT_EQ(RecoverCount(Rational::Zero(), 5), BigInt(0));
  EXPECT_EQ(RecoverCount(Rational::One(), 2), BigInt(4));
  EXPECT_THROW(RecoverCount(Rational(1, 3), 4), std::logic_error);
}

TEST(EdgeCoverAlphabet, Names) {
  Alphabet a = EdgeCoverAlphabet();
  EXPECT_EQ(a.Name(kCoverLabelC), "C");
  EXPECT_EQ(a.Name(kCoverLabelL), "L");
  EXPECT_EQ(a.Name(kCoverLabelV), "V");
  EXPECT_EQ(a.Name(kCoverLabelR), "R");
}

}  // namespace
}  // namespace phom
