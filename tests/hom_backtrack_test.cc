#include "src/hom/backtrack.h"

#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/hom/equivalence.h"

namespace phom {
namespace {

TEST(Backtrack, PathIntoLongerPath) {
  EXPECT_TRUE(*HasHomomorphism(MakeOneWayPath(2), MakeOneWayPath(5)));
  EXPECT_FALSE(*HasHomomorphism(MakeOneWayPath(6), MakeOneWayPath(5)));
}

TEST(Backtrack, LabelsMustMatch) {
  DiGraph q = MakeLabeledPath({0, 1});
  EXPECT_TRUE(*HasHomomorphism(q, MakeLabeledPath({0, 1, 0})));
  EXPECT_TRUE(*HasHomomorphism(q, MakeLabeledPath({1, 0, 1, 0})));
  EXPECT_TRUE(*HasHomomorphism(q, MakeLabeledPath({1, 0, 1})));
  // No 1-labeled edge at all: the second query edge has no image.
  EXPECT_FALSE(*HasHomomorphism(q, MakeLabeledPath({0, 0})));
  // 0 and 1 edges exist but never consecutively in the right order.
  EXPECT_FALSE(*HasHomomorphism(q, MakeLabeledPath({1, 0})));
}

TEST(Backtrack, DirectionMatters) {
  // a->b<-c collapses onto a single edge (a,c -> x; b -> y)...
  EXPECT_TRUE(*HasHomomorphism(MakeArrowPath("><"), MakeOneWayPath(1)));
  // ...but >>< needs two consecutive forward edges (difference of levels 2).
  EXPECT_FALSE(*HasHomomorphism(MakeArrowPath(">><"), MakeOneWayPath(1)));
  EXPECT_TRUE(*HasHomomorphism(MakeArrowPath(">><"), MakeOneWayPath(2)));
  EXPECT_TRUE(*HasHomomorphism(MakeOutStar(3), MakeOneWayPath(1)));
}

TEST(Backtrack, StarCollapsesOntoEdge) {
  // A DWT query maps onto a single edge iff its height is 1.
  EXPECT_TRUE(*HasHomomorphism(MakeOutStar(4), MakeOneWayPath(1)));
  DiGraph deep = MakeDownwardTree({0, 1});  // height 2
  EXPECT_FALSE(*HasHomomorphism(deep, MakeOneWayPath(1)));
}

TEST(Backtrack, DirectedCycleQueryOnAcyclicInstance) {
  DiGraph cycle(3);
  AddEdgeOrDie(&cycle, 0, 1, 0);
  AddEdgeOrDie(&cycle, 1, 2, 0);
  AddEdgeOrDie(&cycle, 2, 0, 0);
  EXPECT_FALSE(*HasHomomorphism(cycle, MakeOneWayPath(10)));
  // But a cycle maps into a cycle of dividing length.
  DiGraph hexagon(6);
  for (int i = 0; i < 6; ++i) {
    AddEdgeOrDie(&hexagon, i, (i + 1) % 6, 0);
  }
  EXPECT_TRUE(*HasHomomorphism(hexagon, cycle));
  EXPECT_FALSE(*HasHomomorphism(cycle, hexagon));
}

TEST(Backtrack, DisconnectedQuery) {
  DiGraph q = DisjointUnion({MakeLabeledPath({0}), MakeLabeledPath({1})});
  DiGraph h1 = MakeLabeledPath({0, 1});
  EXPECT_TRUE(*HasHomomorphism(q, h1));
  DiGraph h2 = MakeLabeledPath({0, 0});
  EXPECT_FALSE(*HasHomomorphism(q, h2));
}

TEST(Backtrack, EmptyGraphs) {
  EXPECT_TRUE(*HasHomomorphism(DiGraph(0), MakeOneWayPath(2)));
  EXPECT_TRUE(*HasHomomorphism(DiGraph(3), MakeOneWayPath(2)));  // isolated
  EXPECT_FALSE(*HasHomomorphism(DiGraph(1), DiGraph(0)));
}

TEST(Backtrack, CountHomomorphisms) {
  // →^1 into →^3: three edges, each a homomorphism image.
  uint64_t count = *ForEachHomomorphism(
      MakeOneWayPath(1), MakeOneWayPath(3),
      [](const std::vector<VertexId>&) { return true; });
  EXPECT_EQ(count, 3u);
  // Isolated query vertex multiplies by |V(H)|.
  DiGraph q(2);
  AddEdgeOrDie(&q, 0, 1, 0);
  VertexId iso = q.AddVertex();
  (void)iso;
  count = *ForEachHomomorphism(
      q, MakeOneWayPath(3),
      [](const std::vector<VertexId>&) { return true; });
  EXPECT_EQ(count, 12u);  // 3 edge images x 4 vertices
}

TEST(Backtrack, CallbackEarlyStop) {
  uint64_t seen = 0;
  uint64_t count = *ForEachHomomorphism(
      MakeOneWayPath(1), MakeOneWayPath(5),
      [&seen](const std::vector<VertexId>&) { return ++seen < 2; });
  EXPECT_EQ(count, 2u);
}

TEST(Backtrack, StepLimit) {
  BacktrackOptions options;
  options.max_steps = 10;
  Rng rng(5);
  DiGraph big = RandomDownwardTree(&rng, 200, 1);
  Result<bool> r = HasHomomorphism(MakeOneWayPath(8), big, options);
  // Either it finishes within 10 steps or reports exhaustion.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
  }
}

TEST(Equivalence, DwtEquivalentToItsHeightPath) {
  // Prop. 5.5: a DWT is equivalent to →^height in the unlabeled setting.
  DiGraph tree = MakeDownwardTree({0, 0, 1, 1, 2});  // height 2
  EXPECT_TRUE(*AreEquivalent(tree, MakeOneWayPath(2)));
  EXPECT_FALSE(*AreEquivalent(tree, MakeOneWayPath(3)));
  EXPECT_FALSE(*AreEquivalent(tree, MakeOneWayPath(1)));
}

TEST(Equivalence, LabeledPathsNotEquivalent) {
  EXPECT_FALSE(*AreEquivalent(MakeLabeledPath({0, 1}), MakeLabeledPath({1, 0})));
  EXPECT_TRUE(*AreEquivalent(MakeLabeledPath({0, 1}), MakeLabeledPath({0, 1})));
}

}  // namespace
}  // namespace phom
