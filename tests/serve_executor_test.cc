#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/executor.h"
#include "src/serve/mpmc_queue.h"
#include "tests/test_util.h"

/// Tier-1 coverage of the parallel serving executor: the MPMC task queue,
/// the componentwise solve/merge API, and the headline guarantee that
/// BatchExecutor output is BIT-identical to serial EvalSession::SolveBatch
/// for every thread count.

namespace phom {
namespace {

using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::MpmcQueue;
using test_util::MixedServeInstance;
using test_util::MixedServeQueries;
using test_util::PaperFigure1;

// ---------------------------------------------------------------------------
// MpmcQueue
// ---------------------------------------------------------------------------

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99)) << "queue must report full";
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i) << "single-threaded use must be strict FIFO";
  }
  EXPECT_FALSE(q.TryPop(&v)) << "queue must report empty";
  // Wrap-around reuses cells correctly.
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(q.TryPush(round));
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, round);
  }
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(1000).capacity(), 1024u);
}

TEST(MpmcQueue, ConcurrentProducersConsumersConserveElements) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 2000;
  MpmcQueue<int> q(64);  // small: exercises full-queue retries
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        while (!q.TryPush(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v;
      while (popped.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (q.TryPop(&v)) {
          sum.fetch_add(v, std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  long long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2) << "every element exactly once";
}

// ---------------------------------------------------------------------------
// Componentwise solve API (solver.h)
// ---------------------------------------------------------------------------

/// Serving corpus shared with serve_async_test.cc (test_util.h).
ProbGraph MixedInstance(Rng* rng) { return MixedServeInstance(rng); }
std::vector<DiGraph> MixedQueries(Rng* rng) { return MixedServeQueries(rng); }

TEST(ComponentwiseSolve, MatchesSolvePreparedBitForBit) {
  Rng rng(20260729);
  ProbGraph instance = MixedInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});
  SolveOptions options;

  PreparedProblem prepared = PrepareProblem(query, instance);
  // The engine is resolved ONCE per query (PlanComponentDispatch); the
  // component solves and the merge reuse the plan with no registry access.
  ComponentDispatch dispatch = PlanComponentDispatch(prepared, options);
  ASSERT_EQ(dispatch.components, 3u) << "three components must fan out";
  ASSERT_NE(dispatch.engine, nullptr);
  EXPECT_FALSE(dispatch.forced);
  EXPECT_EQ(PreparedComponentParallelism(prepared, options),
            dispatch.components);

  std::vector<Result<SolveResult>> parts;
  for (size_t c = 0; c < dispatch.components; ++c) {
    parts.push_back(SolvePreparedComponent(prepared, dispatch, c, options));
  }
  Result<SolveResult> merged = CombinePreparedComponents(
      prepared, dispatch, options, std::move(parts));
  Result<SolveResult> serial = SolvePrepared(prepared, options);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(merged->probability, serial->probability);
  EXPECT_EQ(std::bit_cast<uint64_t>(merged->probability_double),
            std::bit_cast<uint64_t>(serial->probability_double));
  EXPECT_EQ(merged->stats.engine, serial->stats.engine);
  EXPECT_EQ(merged->stats.components, serial->stats.components);
  EXPECT_EQ(merged->stats.fallback_components,
            serial->stats.fallback_components);
  EXPECT_EQ(merged->stats.worlds, serial->stats.worlds);
  EXPECT_EQ(merged->stats.hom_tests, serial->stats.hom_tests);
  EXPECT_EQ(merged->stats.lineage_clauses, serial->stats.lineage_clauses);
  EXPECT_EQ(merged->stats.match_ends, serial->stats.match_ends);
}

TEST(ComponentwiseSolve, NonComponentwiseDispatchesReportZero) {
  Rng rng(7);
  // Single-component instance: nothing to fan out.
  ProbGraph one = AttachRandomProbabilities(
      &rng, RandomTwoWayPath(&rng, 6, 1), 3);
  PreparedProblem prepared = PrepareProblem(MakeOneWayPath(2), one);
  EXPECT_EQ(PreparedComponentParallelism(prepared, SolveOptions{}), 0u);

  // Immediate answers never fan out.
  ProbGraph multi = MixedInstance(&rng);
  PreparedProblem trivial = PrepareProblem(DiGraph(2), multi);
  EXPECT_EQ(PreparedComponentParallelism(trivial, SolveOptions{}), 0u);

  // Whole-forest kernels (unlabeled DWT collapse) are not componentwise.
  SolveOptions forced;
  forced.force_engine = "monte-carlo";
  PreparedProblem labeled = PrepareProblem(MakeLabeledPath({0, 1}), multi);
  EXPECT_EQ(PreparedComponentParallelism(labeled, forced), 0u)
      << "estimators solve the prepared problem whole";

  // Selection errors surface through SolvePrepared, not the parallel path.
  SolveOptions typo;
  typo.force_engine = "no-such-engine";
  EXPECT_EQ(PreparedComponentParallelism(labeled, typo), 0u);
}

// ---------------------------------------------------------------------------
// BatchExecutor determinism: bit-identical to serial for all thread counts.
// ---------------------------------------------------------------------------

void ExpectBatchesBitIdentical(const std::vector<Result<SolveResult>>& serial,
                               const std::vector<Result<SolveResult>>& parallel,
                               const std::string& label) {
  ASSERT_EQ(serial.size(), parallel.size()) << label;
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(label + " query " + std::to_string(i));
    ASSERT_EQ(serial[i].ok(), parallel[i].ok());
    if (!serial[i].ok()) {
      EXPECT_EQ(serial[i].status().code(), parallel[i].status().code());
      EXPECT_EQ(serial[i].status().message(), parallel[i].status().message());
      continue;
    }
    EXPECT_EQ(serial[i]->probability, parallel[i]->probability);
    EXPECT_EQ(std::bit_cast<uint64_t>(serial[i]->probability_double),
              std::bit_cast<uint64_t>(parallel[i]->probability_double))
        << "double answers must match bit for bit";
    EXPECT_EQ(serial[i]->numeric, parallel[i]->numeric);
    EXPECT_EQ(serial[i]->stats.engine, parallel[i]->stats.engine);
    EXPECT_EQ(serial[i]->stats.primary, parallel[i]->stats.primary);
    EXPECT_EQ(serial[i]->stats.components, parallel[i]->stats.components);
    EXPECT_EQ(serial[i]->stats.worlds, parallel[i]->stats.worlds);
    EXPECT_EQ(serial[i]->analysis.cell, parallel[i]->analysis.cell);
  }
}

class ExecutorDeterminismTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExecutorDeterminismTest, BitIdenticalToSerialAcrossThreadCounts) {
  const size_t threads = GetParam();
  for (NumericBackend backend :
       {NumericBackend::kExact, NumericBackend::kDouble}) {
    Rng rng(20170514);
    ProbGraph instance = MixedInstance(&rng);
    std::vector<DiGraph> queries = MixedQueries(&rng);
    // Repeat the batch so label-set cache hits occur mid-batch.
    std::vector<DiGraph> batch = queries;
    batch.insert(batch.end(), queries.begin(), queries.end());

    SolveOptions options;
    options.numeric = backend;

    EvalSession serial_session(instance, options);
    std::vector<Result<SolveResult>> serial =
        serial_session.SolveBatch(batch);

    ExecutorOptions exec_options;
    exec_options.threads = threads;
    BatchExecutor executor(exec_options);
    EXPECT_EQ(executor.num_threads(), threads);
    EvalSession parallel_session(instance, options);
    std::vector<Result<SolveResult>> parallel =
        executor.SolveBatch(parallel_session, batch);

    std::string label = std::string("backend=") + ToString(backend) +
                        " threads=" + std::to_string(threads);
    ExpectBatchesBitIdentical(serial, parallel, label);
    // Session accounting is deterministic too: preparation happens on the
    // submitting thread in batch order.
    EXPECT_EQ(serial_session.stats().queries,
              parallel_session.stats().queries);
    EXPECT_EQ(serial_session.stats().instance_preparations,
              parallel_session.stats().instance_preparations);
    EXPECT_EQ(serial_session.stats().context_cache_hits,
              parallel_session.stats().context_cache_hits);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ExecutorDeterminismTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "Threads" + std::to_string(info.param);
                         });

TEST(BatchExecutor, SplitComponentsOffIsStillIdentical) {
  Rng rng(4242);
  ProbGraph instance = MixedInstance(&rng);
  std::vector<DiGraph> batch = MixedQueries(&rng);

  EvalSession serial_session(instance);
  std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);

  ExecutorOptions no_split;
  no_split.threads = 2;
  no_split.split_components = false;
  BatchExecutor executor(no_split);
  EvalSession session(instance);
  ExpectBatchesBitIdentical(serial, executor.SolveBatch(session, batch),
                            "split_components=false");
}

TEST(BatchExecutor, TinyQueueRunsTasksInlineIdentically) {
  Rng rng(555);
  ProbGraph instance = MixedInstance(&rng);
  std::vector<DiGraph> batch = MixedQueries(&rng);

  EvalSession serial_session(instance);
  std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);

  ExecutorOptions tiny;
  tiny.threads = 2;
  tiny.queue_capacity = 2;  // forces the full-queue inline-run path
  BatchExecutor executor(tiny);
  EvalSession session(instance);
  ExpectBatchesBitIdentical(serial, executor.SolveBatch(session, batch),
                            "queue_capacity=2");
}

TEST(BatchExecutor, MonteCarloStreamsAreDeterministicPerQuery) {
  // The estimator is a pure function of (query, instance, seed): each task
  // builds its own Rng stream, so parallel execution reproduces the serial
  // estimates exactly, for any thread count.
  Rng rng(99);
  ProbGraph instance = MixedInstance(&rng);
  std::vector<DiGraph> batch = MixedQueries(&rng);
  SolveOptions options;
  options.force_engine = "monte-carlo";
  options.monte_carlo.samples = 200;

  EvalSession serial_session(instance, options);
  std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);

  for (size_t threads : {2u, 8u}) {
    ExecutorOptions exec_options;
    exec_options.threads = threads;
    BatchExecutor executor(exec_options);
    EvalSession session(instance, options);
    ExpectBatchesBitIdentical(
        serial, executor.SolveBatch(session, batch),
        "monte-carlo threads=" + std::to_string(threads));
  }
}

TEST(BatchExecutor, ErrorStatusesPropagatePerSlot) {
  Rng rng(123);
  ProbGraph instance = MixedInstance(&rng);
  std::vector<DiGraph> batch = MixedQueries(&rng);
  SolveOptions typo;
  typo.force_engine = "no-such-engine";

  EvalSession serial_session(instance, typo);
  std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);
  ASSERT_FALSE(serial[0].ok());

  BatchExecutor executor(ExecutorOptions{.threads = 2});
  EvalSession session(instance, typo);
  ExpectBatchesBitIdentical(serial, executor.SolveBatch(session, batch),
                            "typo'd engine");
}

TEST(BatchExecutor, EmptyBatch) {
  BatchExecutor executor(ExecutorOptions{.threads = 1});
  PaperFigure1 ex;
  EvalSession session(ex.instance);
  EXPECT_TRUE(executor.SolveBatch(session, {}).empty());
}

// ---------------------------------------------------------------------------
// Session-layer pieces the executor leans on.
// ---------------------------------------------------------------------------

TEST(EvalSession, PrepareMatchesSolve) {
  PaperFigure1 ex;
  EvalSession session(ex.instance);
  PreparedProblem prepared = session.Prepare(ex.query);
  Result<SolveResult> via_prepare = SolvePrepared(prepared, session.options());
  ASSERT_TRUE(via_prepare.ok());
  EXPECT_EQ(via_prepare->probability, ex.expected);
  EXPECT_EQ(session.stats().queries, 1u);
  EXPECT_EQ(session.stats().instance_preparations, 1u);
  // A second Prepare hits the context cache under the same normalized key.
  session.Prepare(ex.query);
  EXPECT_EQ(session.stats().context_cache_hits, 1u);
}

TEST(NormalizeLabelKey, DedupesAndSorts) {
  EXPECT_EQ(NormalizeLabelKey({2, 0, 1}), (std::vector<LabelId>{0, 1, 2}));
  EXPECT_EQ(NormalizeLabelKey({1, 0, 1, 1, 0}), (std::vector<LabelId>{0, 1}));
  EXPECT_EQ(NormalizeLabelKey({}), std::vector<LabelId>{});
}

TEST(DoubleOps, NegativeZeroIsZeroAndOneIsExact) {
  EXPECT_TRUE(NumericOps<double>::IsZero(0.0));
  EXPECT_TRUE(NumericOps<double>::IsZero(-0.0))
      << "IEEE negative zero must short-circuit like +0.0";
  EXPECT_FALSE(NumericOps<double>::IsZero(1e-300));
  EXPECT_TRUE(NumericOps<double>::IsOne(1.0));
  EXPECT_FALSE(NumericOps<double>::IsOne(1.0 + 1e-15));
  EXPECT_FALSE(NumericOps<double>::IsOne(0.9999999999999999));
}

}  // namespace
}  // namespace phom
