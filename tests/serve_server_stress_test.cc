#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/eval_session.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/shard.h"
#include "tests/test_util.h"

/// Stress coverage of the session/engine/serve layers under real
/// concurrency (run under TSan and ASan in CI): many threads hammering one
/// ShardedServer, one EvalSession shared across threads, the cross-instance
/// ContextLru, and concurrent EngineRegistry lookups during registration.

namespace phom {
namespace {

using serve::ContextLru;
using serve::ContextLruOptions;
using serve::ContextLruStats;
using serve::ShardedServer;
using serve::ShardedServerOptions;
using serve::ShardRequest;

ProbGraph StressInstance(uint64_t seed) {
  Rng rng(seed);
  DiGraph shape = DisjointUnion({
      RandomTwoWayPath(&rng, 5, 2),
      RandomDownwardTree(&rng, 5, 2, 0.4),
      RandomConnected(&rng, 4, 2, 2),
  });
  return AttachRandomProbabilities(&rng, std::move(shape), 3);
}

std::vector<DiGraph> StressQueries() {
  std::vector<DiGraph> queries;
  queries.push_back(MakeLabeledPath({0}));
  queries.push_back(MakeLabeledPath({1}));
  queries.push_back(MakeLabeledPath({0, 1}));
  queries.push_back(MakeLabeledPath({1, 0, 1}));
  queries.push_back(MakeOneWayPath(2));
  queries.push_back(DiGraph(2));
  return queries;
}

void ExpectSameResult(const Result<SolveResult>& expected,
                      const Result<SolveResult>& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.ok(), actual.ok()) << label;
  if (!expected.ok()) {
    EXPECT_EQ(expected.status().code(), actual.status().code()) << label;
    return;
  }
  EXPECT_EQ(expected->probability, actual->probability) << label;
  EXPECT_EQ(std::bit_cast<uint64_t>(expected->probability_double),
            std::bit_cast<uint64_t>(actual->probability_double))
      << label;
  EXPECT_EQ(expected->stats.engine, actual->stats.engine) << label;
}

// ---------------------------------------------------------------------------
// ShardedServer hammered from many threads.
// ---------------------------------------------------------------------------

TEST(ShardedServerStress, ManyThreadsMixedTraffic) {
  constexpr size_t kThreads = 8;
  constexpr int kRoundsPerThread = 12;

  // Four shards; shards 0 and 2 are identical instances, so the shared LRU
  // must let their sessions reuse each other's preparations.
  std::vector<ProbGraph> shards = {StressInstance(1), StressInstance(2),
                                   StressInstance(1), StressInstance(3)};
  ShardedServerOptions options;
  options.executor.threads = 4;
  ShardedServer server(std::move(shards), options);
  ASSERT_EQ(server.num_shards(), 4u);

  std::vector<DiGraph> queries = StressQueries();

  // Ground truth, serially, on throwaway sessions with the same options.
  std::vector<std::vector<Result<SolveResult>>> expected;
  for (uint64_t s : {1, 2, 1, 3}) {
    EvalSession session(StressInstance(s), options.solve);
    expected.push_back(session.SolveBatch(queries));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        size_t shard = (t + round) % server.num_shards();
        switch ((t + round) % 3) {
          case 0: {  // single inline query
            size_t qi = round % queries.size();
            Result<SolveResult> r = server.Solve(shard, queries[qi]);
            ExpectSameResult(expected[shard][qi], r, "Solve");
            break;
          }
          case 1: {  // one-shard batch through the pool
            std::vector<Result<SolveResult>> batch =
                server.SolveBatch(shard, queries);
            for (size_t i = 0; i < queries.size(); ++i) {
              ExpectSameResult(expected[shard][i], batch[i], "SolveBatch");
            }
            break;
          }
          case 2: {  // cross-shard request batch
            std::vector<ShardRequest> requests;
            for (size_t i = 0; i < queries.size(); ++i) {
              requests.push_back(
                  {(shard + i) % server.num_shards(), &queries[i]});
            }
            std::vector<Result<SolveResult>> results =
                server.SolveRequests(requests);
            for (size_t i = 0; i < requests.size(); ++i) {
              ExpectSameResult(expected[requests[i].shard][i], results[i],
                               "SolveRequests");
            }
            break;
          }
        }
        if (::testing::Test::HasFailure()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Cross-instance sharing: identical shards 0 and 2 plus repeated label
  // sets mean far fewer context builds than lookups.
  ContextLruStats cache = server.context_cache_stats();
  EXPECT_GT(cache.hits, 0u);
  EXPECT_GT(cache.misses, 0u);
  // Distinct (fingerprint, label set) pairs: 3 distinct instances × at most
  // 4 label sets ({0}, {1}, {0,1}, and the kUnlabeled sets already covered
  // by those) — eviction-free, so misses are bounded by 3 * 4.
  EXPECT_LE(cache.misses, 12u);
  EXPECT_EQ(cache.evictions, 0u);
}

TEST(ShardedServerStress, OutOfRangeAndNullRequests) {
  std::vector<ProbGraph> shards = {StressInstance(1)};
  ShardedServer server(std::move(shards), {});
  DiGraph q = MakeLabeledPath({0});

  EXPECT_EQ(server.Solve(7, q).status().code(),
            Status::Code::kInvalidArgument);
  std::vector<Result<SolveResult>> batch = server.SolveBatch(7, {q, q});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].status().code(), Status::Code::kInvalidArgument);

  std::vector<ShardRequest> requests = {{0, &q}, {9, &q}, {0, nullptr}};
  std::vector<Result<SolveResult>> results = server.SolveRequests(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(results[2].status().code(), Status::Code::kInvalidArgument);
}

TEST(ShardedServerStress, RequestTimelinesMonotonicUnderMixedLoad) {
  // Timeline audit (request.h): enqueued <= started <= finished must hold
  // for every ticket — fast solves, deadline-carrying requests routed
  // through the slack-ordered lane, and admission-priced requests alike.
  std::vector<ProbGraph> shards = {StressInstance(7), StressInstance(8)};
  ShardedServerOptions options;
  options.executor.threads = 4;
  options.executor.cost_model = std::make_shared<serve::CostModel>();
  ShardedServer server(std::move(shards), options);
  std::vector<DiGraph> queries = StressQueries();

  std::vector<serve::SolveTicket> tickets;
  for (int round = 0; round < 8; ++round) {
    for (size_t q = 0; q < queries.size(); ++q) {
      serve::SolveRequest request(queries[q], (round + q) % 2);
      if ((round + q) % 3 == 0) {
        request.WithDeadline(serve::RequestClock::now() +
                             std::chrono::seconds(30));
      }
      tickets.push_back(server.Submit(std::move(request)));
    }
  }
  std::vector<Result<SolveResult>> results = server.Collect(tickets);
  for (size_t i = 0; i < tickets.size(); ++i) {
    SCOPED_TRACE("ticket " + std::to_string(i));
    EXPECT_TRUE(results[i].ok()) << results[i].status().ToString();
    serve::RequestStats stats = tickets[i].stats();
    EXPECT_LE(stats.enqueued, stats.started);
    EXPECT_LE(stats.started, stats.finished);
    EXPECT_GE(stats.total_time().count(), 0);
  }
  serve::ExecutorStats exec = server.executor_stats();
  EXPECT_EQ(exec.submitted, tickets.size());
  EXPECT_EQ(exec.shed, 0u);
}

// ---------------------------------------------------------------------------
// One EvalSession shared by many threads.
// ---------------------------------------------------------------------------

TEST(EvalSessionStress, SharedSessionManyThreads) {
  constexpr size_t kThreads = 8;
  constexpr int kRoundsPerThread = 20;
  ProbGraph instance = StressInstance(42);
  std::vector<DiGraph> queries = StressQueries();

  std::vector<Result<SolveResult>> expected;
  {
    EvalSession scratch(instance);
    expected = scratch.SolveBatch(queries);
  }

  EvalSession session(instance);
  std::atomic<size_t> non_trivial{0};  // queries that touch the context cache
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        size_t qi = (t + round) % queries.size();
        if (queries[qi].num_edges() > 0) non_trivial.fetch_add(1);
        ExpectSameResult(expected[qi], session.Solve(queries[qi]),
                         "shared session");
        if (::testing::Test::HasFailure()) return;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SessionStats stats = session.stats();
  EXPECT_EQ(stats.queries, kThreads * kRoundsPerThread);
  // Contexts are built under the session lock: exactly once per distinct
  // label set even under concurrent first touches. StressQueries uses the
  // label sets {0}, {1} and {0,1} (MakeOneWayPath's kUnlabeled is label 0).
  EXPECT_EQ(stats.instance_preparations, 3u);
  EXPECT_EQ(stats.context_cache_hits + stats.instance_preparations,
            non_trivial.load())
      << "every context-touching query either hits or prepares";
}

// ---------------------------------------------------------------------------
// ContextLru.
// ---------------------------------------------------------------------------

TEST(ContextLru, EquivalentLabelMultisetsShareOneEntry) {
  ContextLru cache;
  ProbGraph instance = StressInstance(5);
  uint64_t fp = instance.Fingerprint();

  bool hit = true;
  auto a = cache.GetOrBuild(instance, fp, {0, 1}, &hit);
  EXPECT_FALSE(hit);
  // Same set as a duplicated, unsorted multiset: must HIT, not rebuild.
  auto b = cache.GetOrBuild(instance, fp, {1, 0, 1, 0, 0}, &hit);
  EXPECT_TRUE(hit) << "normalized keys must collapse equivalent multisets";
  EXPECT_EQ(a.get(), b.get()) << "one shared context object";
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ContextLru, EvictsLeastRecentlyUsed) {
  ContextLruOptions options;
  options.capacity = 2;
  ContextLru cache(options);
  ProbGraph instance = StressInstance(6);
  uint64_t fp = instance.Fingerprint();

  bool hit = false;
  cache.GetOrBuild(instance, fp, {0}, &hit);      // {0}
  cache.GetOrBuild(instance, fp, {1}, &hit);      // {1} {0}
  cache.GetOrBuild(instance, fp, {0}, &hit);      // {0} {1}  (refresh)
  EXPECT_TRUE(hit);
  cache.GetOrBuild(instance, fp, {0, 1}, &hit);   // {0,1} {0} — evicts {1}
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  cache.GetOrBuild(instance, fp, {1}, &hit);      // rebuilt — evicts {0}
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().evictions, 2u);
  cache.GetOrBuild(instance, fp, {0, 1}, &hit);   // still resident
  EXPECT_TRUE(hit);
  cache.GetOrBuild(instance, fp, {0}, &hit);      // the refresh did not save
  EXPECT_FALSE(hit) << "{0} was least-recently-used at the second eviction";

  // Capacity 0 disables caching entirely.
  ContextLruOptions off;
  off.capacity = 0;
  ContextLru disabled(off);
  disabled.GetOrBuild(instance, fp, {0}, &hit);
  EXPECT_FALSE(hit);
  disabled.GetOrBuild(instance, fp, {0}, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(disabled.size(), 0u);
}

TEST(ContextLru, FingerprintCollisionsAreNotServedStaleContexts) {
  // Craft a "collision" by lying about the fingerprint: two different
  // instances presented under the same key must not share a context — the
  // dimension guard forces a rebuild (and replaces the stale entry).
  ContextLru cache;
  ProbGraph a = ProbGraph::Certain(MakeOneWayPath(3));
  ProbGraph b = ProbGraph::Certain(MakeOneWayPath(5));

  bool hit = true;
  auto ctx_a = cache.GetOrBuild(a, 42, {0}, &hit);
  EXPECT_FALSE(hit);
  auto ctx_b = cache.GetOrBuild(b, 42, {0}, &hit);
  EXPECT_FALSE(hit) << "colliding key with different dims must rebuild";
  EXPECT_NE(ctx_a.get(), ctx_b.get());
  EXPECT_EQ(ctx_b->instance.num_vertices(), b.num_vertices());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 1u) << "the stale entry is replaced, not kept";
  // The replacement is now the resident entry.
  auto ctx_b2 = cache.GetOrBuild(b, 42, {0}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(ctx_b.get(), ctx_b2.get());
}

TEST(ContextLru, SharedAcrossSessionsOfIdenticalInstances) {
  auto cache = std::make_shared<ContextLru>();
  // Two sessions over bit-identical instances share preparations; answers
  // stay bit-identical to a private-cache session.
  EvalSession a(StressInstance(7), {}, cache);
  EvalSession b(StressInstance(7), {}, cache);
  EvalSession lone(StressInstance(7));
  DiGraph q = MakeLabeledPath({0, 1});

  Result<SolveResult> ra = a.Solve(q);
  Result<SolveResult> rb = b.Solve(q);
  Result<SolveResult> rl = lone.Solve(q);
  ASSERT_TRUE(ra.ok());
  ExpectSameResult(rl, ra, "shared cache a");
  ExpectSameResult(rl, rb, "shared cache b");
  EXPECT_EQ(a.stats().instance_preparations, 1u);
  EXPECT_EQ(b.stats().instance_preparations, 0u)
      << "b must reuse a's preparation through the shared cache";
  EXPECT_EQ(b.stats().context_cache_hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 1u);

  // A different instance never collides.
  EvalSession c(StressInstance(8), {}, cache);
  ASSERT_TRUE(c.Solve(q).ok());
  EXPECT_EQ(c.stats().instance_preparations, 1u);
  EXPECT_EQ(cache->stats().misses, 2u);
}

// ---------------------------------------------------------------------------
// EngineRegistry under concurrent lookups and registration.
// ---------------------------------------------------------------------------

class DummyEngine : public Engine {
 public:
  explicit DummyEngine(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  Algorithm algorithm() const override { return Algorithm::kFallback; }
  bool Applies(const CaseAnalysis&) const override { return false; }
  bool AutoMatch(const CaseAnalysis&) const override { return false; }
  Result<EngineAnswer> Solve(const PreparedProblem&, const SolveOptions&,
                             SolveStats*) const override {
    return Status::NotSupported("dummy engine never solves");
  }

 private:
  std::string name_;
};

TEST(EngineRegistryStress, ConcurrentLookupsDuringRegistration) {
  // The documented invariant is register-before-serve; this test checks the
  // stronger property the lock actually provides — lookups racing a
  // Register are memory-safe and see a consistent engine list. Uses a
  // private registry so the global one stays pristine.
  EngineRegistry registry;
  RegisterDefaultEngines(&registry);

  constexpr size_t kLookupThreads = 6;
  constexpr int kEngines = 40;
  // Bounded lookup loops (not spin-until-registered): readers re-taking the
  // shared lock in a tight loop can starve the writer for minutes on a
  // single TSan-instrumented core.
  constexpr int kLookupsPerThread = 500;
  std::atomic<int> seen{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kLookupThreads; ++t) {
    threads.emplace_back([&] {
      CaseAnalysis analysis;
      analysis.query_class.connected = true;
      for (int i = 0; i < kLookupsPerThread; ++i) {
        if (registry.FindByName("fallback") == nullptr) seen.fetch_add(1);
        if (registry.SelectAuto(analysis) == nullptr) seen.fetch_add(1);
        if (registry.FindByAlgorithm(Algorithm::kFallback) == nullptr) {
          seen.fetch_add(1);
        }
        registry.engines();
        if (i % 16 == 0) std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < kEngines; ++i) {
    registry.Register(
        std::make_unique<DummyEngine>("dummy-" + std::to_string(i)));
    if (i % 8 == 0) std::this_thread::yield();
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(seen.load(), 0) << "built-in engines must never disappear";
  for (int i = 0; i < kEngines; ++i) {
    EXPECT_NE(registry.FindByName("dummy-" + std::to_string(i)), nullptr);
  }
  // Duplicate names still rejected (under the lock).
  EXPECT_THROW(registry.Register(std::make_unique<DummyEngine>("dummy-0")),
               std::logic_error);
}

}  // namespace
}  // namespace phom
