#include "src/graph/digraph.h"

#include <gtest/gtest.h>

#include "src/graph/alphabet.h"
#include "src/graph/prob_graph.h"

namespace phom {
namespace {

TEST(DiGraph, AddVerticesAndEdges) {
  DiGraph g(3);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EdgeId e = AddEdgeOrDie(&g, 0, 1, 5);
  EXPECT_EQ(g.edge(e).src, 0u);
  EXPECT_EQ(g.edge(e).dst, 1u);
  EXPECT_EQ(g.edge(e).label, 5u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
  EXPECT_EQ(g.UndirectedDegree(0), 1u);
  VertexId v = g.AddVertex();
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(g.num_vertices(), 4u);
}

TEST(DiGraph, RejectsMultiEdgesAndBadEndpoints) {
  DiGraph g(2);
  AddEdgeOrDie(&g, 0, 1, 0);
  EXPECT_FALSE(g.AddEdge(0, 1, 1).ok());  // same ordered pair, even new label
  EXPECT_TRUE(g.AddEdge(1, 0, 0).ok());   // reverse pair is fine
  EXPECT_FALSE(g.AddEdge(0, 2, 0).ok());
  EXPECT_FALSE(g.AddEdge(5, 0, 0).ok());
}

TEST(DiGraph, AllowsSelfLoops) {
  DiGraph g(1);
  EXPECT_TRUE(g.AddEdge(0, 0, 0).ok());
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(DiGraph, FindAndHasEdge) {
  DiGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 2);
  ASSERT_TRUE(g.FindEdge(0, 1).has_value());
  EXPECT_FALSE(g.FindEdge(1, 0).has_value());
  EXPECT_TRUE(g.HasEdge(0, 1, 2));
  EXPECT_FALSE(g.HasEdge(0, 1, 3));
  EXPECT_FALSE(g.HasEdge(0, 2, 2));
}

TEST(DiGraph, UsedLabels) {
  DiGraph g(4);
  AddEdgeOrDie(&g, 0, 1, 7);
  AddEdgeOrDie(&g, 1, 2, 3);
  AddEdgeOrDie(&g, 2, 3, 7);
  EXPECT_EQ(g.UsedLabels(), (std::vector<LabelId>{3, 7}));
  EXPECT_FALSE(g.UsesSingleLabel());
  DiGraph single(2);
  AddEdgeOrDie(&single, 0, 1, 9);
  EXPECT_TRUE(single.UsesSingleLabel());
  EXPECT_TRUE(DiGraph(3).UsesSingleLabel());
}

TEST(Alphabet, InternAndLookup) {
  Alphabet a;
  LabelId r = a.Intern("R");
  LabelId s = a.Intern("S");
  EXPECT_NE(r, s);
  EXPECT_EQ(a.Intern("R"), r);
  EXPECT_EQ(a.Name(r), "R");
  EXPECT_EQ(*a.Find("S"), s);
  EXPECT_FALSE(a.Find("T").has_value());
  EXPECT_EQ(a.size(), 2u);
}

TEST(ProbGraph, ProbabilityBookkeeping) {
  ProbGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&g, 1, 2, 0, Rational::One());
  EXPECT_EQ(g.prob(0), Rational::Half());
  EXPECT_EQ(g.NumUncertainEdges(), 1u);
  EXPECT_FALSE(g.AddEdge(0, 2, 0, Rational(3, 2)).ok());
}

TEST(ProbGraph, WorldProbability) {
  ProbGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&g, 1, 2, 0, Rational(1, 4));
  EXPECT_EQ(g.WorldProbability({true, true}), Rational(1, 8));
  EXPECT_EQ(g.WorldProbability({true, false}), Rational(3, 8));
  EXPECT_EQ(g.WorldProbability({false, false}), Rational(3, 8));
  // All four worlds sum to 1.
  Rational total = g.WorldProbability({true, true}) +
                   g.WorldProbability({true, false}) +
                   g.WorldProbability({false, true}) +
                   g.WorldProbability({false, false});
  EXPECT_EQ(total, Rational::One());
}

TEST(ProbGraph, RestrictToLabelsKeepsVertices) {
  ProbGraph g(4);
  AddEdgeOrDie(&g, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&g, 1, 2, 1, Rational::Half());
  AddEdgeOrDie(&g, 2, 3, 0, Rational(1, 4));
  ProbGraph restricted = g.RestrictToLabels({0});
  EXPECT_EQ(restricted.num_vertices(), 4u);
  EXPECT_EQ(restricted.num_edges(), 2u);
  EXPECT_EQ(restricted.prob(1), Rational(1, 4));
}

TEST(SplitComponents, MapsBackToOriginalIds) {
  ProbGraph g(5);
  AddEdgeOrDie(&g, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&g, 3, 2, 1, Rational(1, 4));
  // vertex 4 isolated.
  std::vector<ComponentView> comps = SplitComponents(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0].vertex_map, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(comps[1].vertex_map, (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(comps[2].vertex_map, (std::vector<VertexId>{4}));
  EXPECT_EQ(comps[0].graph.num_edges(), 1u);
  EXPECT_EQ(comps[1].graph.num_edges(), 1u);
  EXPECT_EQ(comps[1].graph.prob(0), Rational(1, 4));
  EXPECT_EQ(comps[1].edge_map, (std::vector<EdgeId>{1}));
  // Edge direction preserved: 3 -> 2 maps to local 1 -> 0.
  EXPECT_EQ(comps[1].graph.graph().edge(0).src, 1u);
  EXPECT_EQ(comps[1].graph.graph().edge(0).dst, 0u);
}

}  // namespace
}  // namespace phom
