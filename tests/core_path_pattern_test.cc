#include "src/core/path_pattern.h"

#include <gtest/gtest.h>

#include "src/core/algo_dwt.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

/// Brute-force oracle: sum of world probabilities with a pattern match.
Rational PatternProbabilityBruteForce(const PathPattern& pattern,
                                      const ProbGraph& instance) {
  size_t m = instance.num_edges();
  PHOM_CHECK(m <= 18);
  Rational total = Rational::Zero();
  std::vector<bool> kept(m);
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    for (size_t e = 0; e < m; ++e) kept[e] = (mask >> e) & 1;
    if (WorldHasPatternMatch(pattern, instance.graph(), kept)) {
      total += instance.WorldProbability(kept);
    }
  }
  return total;
}

PathPattern ChildChain(std::vector<LabelId> labels) {
  PathPattern p;
  for (LabelId l : labels) p.steps.push_back({l, false});
  return p;
}

TEST(PathPattern, EmptyPatternIsCertain) {
  ProbGraph h(2);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  EXPECT_EQ(*SolvePathPatternOnDwtForest(PathPattern{}, h), Rational::One());
}

TEST(PathPattern, ChildAxesCoincideWithProp410) {
  Rng rng(601);
  for (int trial = 0; trial < 60; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomDownwardTree(&rng, rng.UniformInt(2, 12), 2, 0.5), 2);
    std::vector<LabelId> labels;
    for (int i = 0, m = rng.UniformInt(1, 4); i < m; ++i) {
      labels.push_back(static_cast<LabelId>(rng.UniformInt(0, 1)));
    }
    Rational via_pattern =
        *SolvePathPatternOnDwtForest(ChildChain(labels), h);
    Rational via_kmp = *SolvePathOnDwtForest(labels, h);
    EXPECT_EQ(via_pattern, via_kmp) << trial;
  }
}

TEST(PathPattern, DescendantAxisByHand) {
  // Chain a -R-> b -S-> c -T-> d, all probability 1/2.
  ProbGraph h(4);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());  // R
  AddEdgeOrDie(&h, 1, 2, 1, Rational::Half());  // S
  AddEdgeOrDie(&h, 2, 3, 2, Rational::Half());  // T
  // R//T: needs R and T present and everything between (just S): 1/8.
  PathPattern r_desc_t;
  r_desc_t.steps = {{0, false}, {2, true}};
  EXPECT_EQ(*SolvePathPatternOnDwtForest(r_desc_t, h), Rational(1, 8));
  // //T (descendant from anywhere): just the T edge: 1/2.
  PathPattern any_t;
  any_t.steps = {{2, true}};
  EXPECT_EQ(*SolvePathPatternOnDwtForest(any_t, h), Rational::Half());
  // R/T with child axis: no R edge directly above a T edge: 0.
  PathPattern r_child_t;
  r_child_t.steps = {{0, false}, {2, false}};
  EXPECT_EQ(*SolvePathPatternOnDwtForest(r_child_t, h), Rational::Zero());
}

TEST(PathPattern, DescendantGapMustBePresent) {
  // R//T where the gap edge is nearly always absent.
  ProbGraph h(4);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::One());     // R
  AddEdgeOrDie(&h, 1, 2, 1, Rational(1, 16));     // S (the gap)
  AddEdgeOrDie(&h, 2, 3, 2, Rational::One());     // T
  PathPattern p;
  p.steps = {{0, false}, {2, true}};
  EXPECT_EQ(*SolvePathPatternOnDwtForest(p, h), Rational(1, 16));
}

TEST(PathPattern, MatchesBruteForceOnRandomForests) {
  Rng rng(602);
  for (int trial = 0; trial < 120; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomDownwardTree(&rng, rng.UniformInt(2, 9), 2, 0.5), 2);
    PathPattern pattern;
    for (int i = 0, m = rng.UniformInt(1, 3); i < m; ++i) {
      pattern.steps.push_back({static_cast<LabelId>(rng.UniformInt(0, 1)),
                               rng.Bernoulli(0.5)});
    }
    Rational fast = *SolvePathPatternOnDwtForest(pattern, h);
    Rational brute = PatternProbabilityBruteForce(pattern, h);
    EXPECT_EQ(fast, brute)
        << "trial " << trial << " pattern " << pattern.ToString();
  }
}

TEST(PathPattern, ForestsCombine) {
  // Two independent chains; //R on either.
  ProbGraph h(4);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  AddEdgeOrDie(&h, 2, 3, 0, Rational::Half());
  PathPattern p;
  p.steps = {{0, true}};
  EXPECT_EQ(*SolvePathPatternOnDwtForest(p, h), Rational(3, 4));
}

TEST(PathPattern, RejectsNonForest) {
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 2, 0, Rational::One());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::One());
  PathPattern p;
  p.steps = {{0, false}};
  EXPECT_FALSE(SolvePathPatternOnDwtForest(p, h).ok());
}

TEST(PathPattern, StatsReported) {
  Rng rng(603);
  ProbGraph h = AttachRandomProbabilities(
      &rng, RandomDownwardTree(&rng, 60, 2, 0.6), 2);
  PathPattern p;
  p.steps = {{0, true}, {1, true}, {0, false}};
  PathPatternStats stats;
  ASSERT_TRUE(SolvePathPatternOnDwtForest(p, h, {}, &stats).ok());
  EXPECT_GT(stats.dfa_states, 1u);
  EXPECT_GT(stats.table_cells, 60u);
}

TEST(PathPattern, StateLimit) {
  Rng rng(604);
  ProbGraph h = AttachRandomProbabilities(
      &rng, RandomDownwardTree(&rng, 30, 2, 0.5), 2);
  PathPattern p;
  for (int i = 0; i < 12; ++i) {
    p.steps.push_back({static_cast<LabelId>(i % 2), true});
  }
  PathPatternOptions options;
  options.max_dfa_states = 2;
  Result<Rational> r = SolvePathPatternOnDwtForest(p, h, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
}

}  // namespace
}  // namespace phom
