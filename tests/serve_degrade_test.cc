#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/async.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"
#include "src/serve/shard.h"
#include "tests/test_util.h"

/// Tier-1 coverage of graceful degradation under deadline pressure
/// (DegradePolicy, solver.h; re-dispatch in serve/executor.cc): every
/// degradation edge — at submit, mid-flight between component tasks, inside
/// a hard cell via the in-component yield points — plus the non-degrading
/// edges (policy off, explicit cancel, immediate answers) and the headline
/// guarantee that WITHOUT deadline pressure the policy changes nothing, bit
/// for bit, across thread counts and numeric backends. Timing-sensitive
/// scenarios reuse the registry "gate" engine trick of serve_async_test.cc.

namespace phom {
namespace {

using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::RequestClock;
using serve::RequestStats;
using serve::ShardedServer;
using serve::ShardedServerOptions;
using serve::SolveRequest;
using serve::SolveTicket;
using test_util::MixedServeInstance;
using test_util::MixedServeQueries;

// ---------------------------------------------------------------------------
// The deterministic "slow" engine harness (Gate/GateEngine/GateOpener)
// lives in tests/test_util.h, shared with serve_async_test.cc.
// ---------------------------------------------------------------------------

using test_util::GateOpener;
using test_util::TestGate;

void EnsureGateEngineRegistered() {
  test_util::EnsureGateEngineRegistered("degrade-test-gate");
}

// ---------------------------------------------------------------------------
// Shared policy + comparison helpers.
// ---------------------------------------------------------------------------

/// The deterministic test policy: the floor is a multiple of the Monte
/// Carlo check interval, so a degraded run whose deadline has already
/// lapsed truncates at EXACTLY min_samples samples.
DegradePolicy TestPolicy() {
  DegradePolicy policy;
  policy.mode = DegradeMode::kOnDeadlineRisk;
  policy.min_samples = 512;
  return policy;
}

void ExpectDegradedProvenance(const Result<SolveResult>& result,
                              const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degrade.degraded);
  EXPECT_EQ(result->stats.engine, "monte-carlo");
  EXPECT_EQ(result->degrade.samples_used, TestPolicy().min_samples)
      << "an already-lapsed deadline truncates exactly at the floor";
  EXPECT_EQ(result->degrade.estimate, result->probability_double);
  EXPECT_GE(result->degrade.estimate, 0.0);
  EXPECT_LE(result->degrade.estimate, 1.0);
  EXPECT_GT(result->degrade.budget_spent.count(), 0);
  double p = result->degrade.estimate;
  EXPECT_DOUBLE_EQ(result->degrade.half_width_95,
                   1.96 * std::sqrt(p * (1.0 - p) /
                                    static_cast<double>(
                                        result->degrade.samples_used)));
}

void ExpectResultsBitIdentical(const Result<SolveResult>& serial,
                               const Result<SolveResult>& async,
                               const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(serial.ok(), async.ok());
  if (!serial.ok()) {
    EXPECT_EQ(serial.status().code(), async.status().code());
    EXPECT_EQ(serial.status().message(), async.status().message());
    return;
  }
  EXPECT_EQ(serial->probability, async->probability);
  EXPECT_EQ(std::bit_cast<uint64_t>(serial->probability_double),
            std::bit_cast<uint64_t>(async->probability_double))
      << "double answers must match bit for bit";
  EXPECT_EQ(serial->numeric, async->numeric);
  EXPECT_EQ(serial->stats.engine, async->stats.engine);
  EXPECT_EQ(serial->stats.components, async->stats.components);
  EXPECT_EQ(serial->stats.worlds, async->stats.worlds);
  EXPECT_EQ(serial->degrade.degraded, async->degrade.degraded);
  EXPECT_EQ(serial->degrade.samples_used, async->degrade.samples_used);
}

// ---------------------------------------------------------------------------
// Degrade at submit: an already-expired deadline converts instead of
// fail-fasting (and the serial EvalSession twin agrees bit for bit).
// ---------------------------------------------------------------------------

TEST(ServeDegradeSubmit, ExpiredDeadlineConvertsToDegradedEstimate) {
  Rng rng(101);
  ProbGraph instance = MixedServeInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});
  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});

  SolveRequest request(query);
  request.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1))
      .WithDegrade(TestPolicy());
  SolveTicket ticket = executor.Submit(session, std::move(request));
  Result<SolveResult> result = ticket.Get();
  ExpectDegradedProvenance(result, "degrade at submit");
  EXPECT_TRUE(ticket.stats().degraded);
  EXPECT_FALSE(ticket.stats().expired_before_start)
      << "the request produced a result, not a before-start error";
  EXPECT_EQ(session.stats().queries, 1u)
      << "unlike policy-off fail-fast, the request was prepared";

  // The serial twin: an EvalSession whose options carry an expired token
  // and the same policy degrades identically (same seed, same floor).
  CancelToken expired;
  expired.SetDeadline(CancelToken::Clock::now() - std::chrono::seconds(1));
  SolveOptions serial_options;
  serial_options.cancel = &expired;
  serial_options.degrade = TestPolicy();
  EvalSession serial_session(instance, serial_options);
  Result<SolveResult> serial = serial_session.Solve(query);
  ExpectDegradedProvenance(serial, "serial twin");
  EXPECT_EQ(std::bit_cast<uint64_t>(serial->probability_double),
            std::bit_cast<uint64_t>(result->probability_double))
      << "same seed, same floor: the degraded estimates agree bit for bit";
  EXPECT_EQ(serial->probability, result->probability);
}

TEST(ServeDegradeSubmit, PolicyOffStillFailsFastWithoutPreparing) {
  Rng rng(103);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});

  SolveRequest request(MakeLabeledPath({0, 1}));
  request.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1));
  SolveTicket ticket = executor.Submit(session, std::move(request));
  ASSERT_TRUE(ticket.done());
  EXPECT_EQ(ticket.Get().status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(ticket.stats().expired_before_start);
  EXPECT_FALSE(ticket.stats().degraded);
  EXPECT_EQ(session.stats().queries, 0u)
      << "policy off: nothing is prepared, exactly as before";
}

TEST(ServeDegradeSubmit, ImmediateAnswersStayExactUnderPressure) {
  Rng rng(107);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  EvalSession baseline_session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});

  DiGraph edgeless(3);  // immediate answer during preparation
  Result<SolveResult> baseline = baseline_session.Solve(edgeless);

  SolveRequest request(edgeless);
  request.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1))
      .WithDegrade(TestPolicy());
  SolveTicket ticket = executor.Submit(session, std::move(request));
  Result<SolveResult> result = ticket.Get();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->degrade.degraded)
      << "an immediate answer is free and exact: no estimate is substituted";
  EXPECT_FALSE(ticket.stats().degraded);
  ExpectResultsBitIdentical(baseline, result, "immediate under pressure");
}

// ---------------------------------------------------------------------------
// Degrade mid-flight: expiry between component tasks of one request.
// ---------------------------------------------------------------------------

TEST(ServeDegradeMidFlight, ExpiryBetweenComponentTasksConverts) {
  Rng rng(109);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  // One worker, parked by the test_after_fanout hook (the serve_async_test
  // trick) right after it fanned the request out and ran the FIRST
  // component — work provably starts before the deadline, the remaining
  // components expire at dequeue once the worker resumes, and the merge
  // hits DeadlineExceeded mid-flight and converts.
  std::mutex mu;
  std::condition_variable cv;
  bool fanned = false;
  bool resume = false;
  ExecutorOptions exec_options;
  exec_options.threads = 1;
  exec_options.test_after_fanout = [&](size_t) {
    std::unique_lock<std::mutex> lock(mu);
    fanned = true;
    cv.notify_all();
    cv.wait(lock, [&] { return resume; });
  };
  BatchExecutor executor(exec_options);

  SolveRequest doomed(MakeLabeledPath({0, 1}));  // 3 instance components
  const RequestClock::time_point deadline =
      RequestClock::now() + std::chrono::milliseconds(250);
  doomed.WithDeadline(deadline).WithDegrade(TestPolicy());
  SolveTicket late = executor.Submit(session, std::move(doomed));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return fanned; });
  }
  std::this_thread::sleep_until(deadline + std::chrono::milliseconds(5));
  {
    std::lock_guard<std::mutex> lock(mu);
    resume = true;
  }
  cv.notify_all();

  Result<SolveResult> result = late.Get();
  ExpectDegradedProvenance(result, "mid-flight conversion");
  EXPECT_TRUE(late.stats().degraded);
  EXPECT_FALSE(late.stats().expired_before_start)
      << "the first component ran at fan-out: the expiry was mid-flight";
}

// ---------------------------------------------------------------------------
// Degrade inside a hard cell: the new in-component yield points abort a
// single 2^m world enumeration mid-loop, and the policy converts the abort.
// ---------------------------------------------------------------------------

using test_util::HardCellEnumerationCase;

TEST(ServeDegradeHardCell, InComponentYieldPointConvertsMidEnumeration) {
  Rng rng(113);
  HardCellEnumerationCase hard(&rng);
  EvalSession session(hard.instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});

  // Timing-based (the enumeration must outlive the deadline), so retry on
  // the rare scheduling hiccup where the worker only dequeues after the
  // deadline — the conversion still happens then, just at the dequeue gate
  // instead of inside the enumeration loop.
  for (int attempt = 0; attempt < 5; ++attempt) {
    const RequestClock::time_point deadline =
        RequestClock::now() + std::chrono::milliseconds(150);
    SolveRequest request(hard.query);
    request.WithDeadline(deadline).WithDegrade(TestPolicy());
    SolveTicket ticket = executor.Submit(session, std::move(request));
    Result<SolveResult> result = ticket.Get();
    ExpectDegradedProvenance(result, "hard-cell conversion");
    EXPECT_TRUE(ticket.stats().degraded);
    if (ticket.stats().started < deadline) {
      // The solve began before the deadline, so the abort happened at a
      // yield point INSIDE the world-enumeration loop (pre-PR, this
      // request would have enumerated all 2^20 worlds to completion).
      SUCCEED();
      return;
    }
  }
  FAIL() << "worker never started before the deadline in 5 attempts";
}

TEST(ServeDegradeHardCell, CoreYieldPointsInterruptFallbackLoops) {
  // The core-layer half, fully deterministic: the world-enumeration and
  // match-lineage loops consult an already-fired token and abort, where
  // they previously ran to completion. A small instance keeps the
  // idle-token full enumerations tier-1 fast.
  Rng rng(127);
  HardCellEnumerationCase hard(&rng, /*edges=*/10);

  CancelToken cancelled;
  cancelled.Cancel();
  FallbackOptions fb;
  fb.cancel = &cancelled;
  EXPECT_EQ(SolveByWorldEnumeration(hard.query, hard.instance, fb)
                .status()
                .code(),
            Status::Code::kCancelled);

  CancelToken expired;
  expired.SetDeadline(CancelToken::Clock::now() - std::chrono::seconds(1));
  fb.cancel = &expired;
  EXPECT_EQ(SolveByWorldEnumeration(hard.query, hard.instance, fb)
                .status()
                .code(),
            Status::Code::kDeadlineExceeded);

  DiGraph connected = MakeLabeledPath({0});
  EXPECT_EQ(SolveByMatchLineage(connected, hard.instance, fb)
                .status()
                .code(),
            Status::Code::kDeadlineExceeded);

  // An idle token changes nothing, bit for bit.
  CancelToken idle;
  idle.SetDeadline(CancelToken::Clock::now() + std::chrono::hours(1));
  FallbackOptions gated;
  gated.cancel = &idle;
  Rational with_token =
      *SolveByWorldEnumeration(hard.query, hard.instance, gated);
  Rational without = *SolveByWorldEnumeration(hard.query, hard.instance);
  EXPECT_EQ(with_token, without);
}

TEST(ServeDegradeEngine, ForcedMonteCarloTruncationCarriesProvenance) {
  // A forced "monte-carlo" solve whose sampling is truncated by a lapsed
  // deadline must say so: without provenance, a floor-sized estimate would
  // be indistinguishable from the full budget the caller asked for.
  Rng rng(139);
  ProbGraph instance = MixedServeInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});
  CancelToken expired;
  expired.SetDeadline(CancelToken::Clock::now() - std::chrono::seconds(1));

  SolveOptions options;
  options.force_engine = "monte-carlo";
  options.cancel = &expired;
  options.monte_carlo.samples = 100'000;
  options.monte_carlo.min_samples = 512;
  Result<SolveResult> result = Solver(options).Solve(query, instance);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degrade.degraded);
  EXPECT_EQ(result->degrade.samples_used, 512u);
  EXPECT_EQ(result->degrade.estimate, result->probability_double);
  EXPECT_GT(result->degrade.budget_spent.count(), 0);

  // Without a floor the same solve is a plain deadline miss...
  SolveOptions strict = options;
  strict.monte_carlo.min_samples = 0;
  EXPECT_EQ(Solver(strict).Solve(query, instance).status().code(),
            Status::Code::kDeadlineExceeded);

  // ...and an untruncated run carries no provenance.
  SolveOptions plain;
  plain.force_engine = "monte-carlo";
  plain.monte_carlo.samples = 512;
  Result<SolveResult> full = Solver(plain).Solve(query, instance);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->degrade.degraded);
}

// ---------------------------------------------------------------------------
// Explicit cancellation is never degraded.
// ---------------------------------------------------------------------------

TEST(ServeDegradeCancel, ExplicitCancelBeatsDegradation) {
  EnsureGateEngineRegistered();
  TestGate()->Reset();
  Rng rng(131);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  BatchExecutor executor(ExecutorOptions{.threads = 1});
  GateOpener opener;

  SolveRequest blocker(MakeLabeledPath({0}));
  blocker.WithEngine("degrade-test-gate");
  SolveTicket blocked = executor.Submit(session, std::move(blocker));
  TestGate()->AwaitEntered(1);

  SolveRequest request(MakeLabeledPath({0, 1}));
  request.WithDegrade(TestPolicy());
  SolveTicket cancelled = executor.Submit(session, std::move(request));
  EXPECT_TRUE(cancelled.Cancel());
  TestGate()->Open();

  EXPECT_EQ(cancelled.Get().status().code(), Status::Code::kCancelled)
      << "the caller asked for the request to stop, not for an estimate";
  EXPECT_FALSE(cancelled.stats().degraded);
  ASSERT_TRUE(blocked.Get().ok());
}

// ---------------------------------------------------------------------------
// ShardedServer front door: server-wide policy default + per-request knob.
// ---------------------------------------------------------------------------

TEST(ServeDegradeSharded, ServerWideDefaultPolicyConverts) {
  Rng rng(137);
  ProbGraph instance = MixedServeInstance(&rng);
  DiGraph query = MakeLabeledPath({0, 1});

  ShardedServerOptions options;
  options.executor.threads = 2;
  options.solve.degrade = TestPolicy();  // server-wide default
  ShardedServer server({instance}, options);

  SolveRequest doomed(query, 0);
  doomed.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1));
  SolveTicket ticket = server.Submit(std::move(doomed));
  ExpectDegradedProvenance(ticket.Get(), "server-wide policy");

  // A healthy neighbor on the same server still answers exactly.
  EvalSession serial(instance);
  Result<SolveResult> expected = serial.Solve(query);
  SolveTicket healthy = server.Submit(SolveRequest(query, 0));
  ExpectResultsBitIdentical(expected, healthy.Get(), "healthy neighbor");

  // A per-request override can switch the policy back OFF.
  DegradePolicy off;  // mode = kOff
  SolveRequest strict(query, 0);
  strict.WithDeadline(RequestClock::now() - std::chrono::milliseconds(1))
      .WithDegrade(off);
  SolveTicket failed = server.Submit(std::move(strict));
  EXPECT_EQ(failed.Get().status().code(), Status::Code::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// The headline no-pressure guarantee: policy ON + generous deadlines is
// bit-identical to the serial policy-off session, across thread counts and
// numeric backends.
// ---------------------------------------------------------------------------

class DegradeIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DegradeIdentityTest, NoPressureResultsBitIdenticalToSerial) {
  const size_t threads = GetParam();
  for (NumericBackend backend :
       {NumericBackend::kExact, NumericBackend::kDouble}) {
    Rng rng(20170514);
    ProbGraph instance = MixedServeInstance(&rng);
    std::vector<DiGraph> queries = MixedServeQueries(&rng);
    std::vector<DiGraph> batch = queries;
    batch.insert(batch.end(), queries.begin(), queries.end());

    SolveOptions options;
    options.numeric = backend;

    EvalSession serial_session(instance, options);
    std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);

    ExecutorOptions exec_options;
    exec_options.threads = threads;
    BatchExecutor executor(exec_options);
    EvalSession async_session(instance, options);
    std::vector<SolveRequest> requests;
    requests.reserve(batch.size());
    for (const DiGraph& q : batch) {
      SolveRequest request(q);
      request.WithDeadline(RequestClock::now() + std::chrono::hours(1))
          .WithDegrade(TestPolicy());
      requests.push_back(std::move(request));
    }
    std::vector<SolveTicket> tickets =
        executor.SubmitBatch(async_session, std::move(requests));
    std::vector<Result<SolveResult>> async = BatchExecutor::Collect(tickets);

    std::string label = std::string("backend=") + ToString(backend) +
                        " threads=" + std::to_string(threads);
    ASSERT_EQ(serial.size(), async.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectResultsBitIdentical(serial[i], async[i],
                                label + " query " + std::to_string(i));
      if (async[i].ok()) {
        EXPECT_FALSE((*async[i]).degrade.degraded) << label << " query " << i;
      }
    }
    for (SolveTicket& t : tickets) {
      EXPECT_FALSE(t.stats().degraded);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, DegradeIdentityTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "Threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace phom
