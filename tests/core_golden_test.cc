#include <gtest/gtest.h>

#include "src/core/phom.h"
#include "tests/test_util.h"

/// Golden regression corpus: fixed seeded instances across the dichotomy's
/// cells with their exact probabilities pinned. Any future change to the
/// generators, the arithmetic, or any algorithm that alters one of these
/// bit-exact rationals is a regression (or a deliberate, documented change).

namespace phom {
namespace {

TEST(Golden, UnlabeledPathOnPolytree) {
  Rng rng(7);
  ProbGraph h = AttachRandomProbabilities(&rng, RandomPolytree(&rng, 40, 1), 4);
  EXPECT_EQ(*SolveProbability(MakeOneWayPath(5), h),
            *Rational::FromString("7405970523/274877906944"));
}

TEST(Golden, LabeledPathOnDownwardTree) {
  Rng rng(8);
  ProbGraph h =
      AttachRandomProbabilities(&rng, RandomDownwardTree(&rng, 60, 2, 0.5), 4);
  DiGraph q = RandomOneWayPath(&rng, 3, 2);
  EXPECT_EQ(*SolveProbability(q, h),
            *Rational::FromString("1076418867/4294967296"));
}

TEST(Golden, TwoWayPathQueryOnTwoWayPath) {
  Rng rng(9);
  ProbGraph h =
      AttachRandomProbabilities(&rng, RandomTwoWayPath(&rng, 50, 2), 4);
  DiGraph q = RandomTwoWayPath(&rng, 4, 2);
  EXPECT_EQ(*SolveProbability(q, h), *Rational::FromString("3375/4096"));
}

TEST(Golden, GradedDiamondOnDownwardTree) {
  Rng rng(10);
  ProbGraph h =
      AttachRandomProbabilities(&rng, RandomDownwardTree(&rng, 30, 1, 0.6), 4);
  DiGraph q(4);
  AddEdgeOrDie(&q, 0, 1, 0);
  AddEdgeOrDie(&q, 0, 2, 0);
  AddEdgeOrDie(&q, 1, 3, 0);
  AddEdgeOrDie(&q, 2, 3, 0);
  EXPECT_EQ(*SolveProbability(q, h),
            *Rational::FromString(
                "309468788518854059628001681/309485009821345068724781056"));
}

TEST(Golden, DisconnectedLabeledQueryViaFallback) {
  Rng rng(11);
  ProbGraph h =
      AttachRandomProbabilities(&rng, RandomOneWayPath(&rng, 10, 2), 4);
  DiGraph q = DisjointUnion(
      {RandomOneWayPath(&rng, 2, 2), RandomOneWayPath(&rng, 2, 2)});
  EXPECT_EQ(*SolveProbability(q, h),
            *Rational::FromString("1423225819/4294967296"));
}

TEST(Golden, PaperExampleIsForever574) {
  // Examples 2.1-2.2, once more, as a permanent anchor.
  test_util::PaperFigure1 ex;
  EXPECT_EQ(*SolveProbability(ex.query, ex.instance), Rational(287, 500));
}

}  // namespace
}  // namespace phom
