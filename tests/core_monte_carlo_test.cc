#include "src/core/monte_carlo.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

TEST(MonteCarlo, DegenerateProbabilities) {
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::One());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::One());
  MonteCarloOptions options;
  options.samples = 200;
  Result<MonteCarloEstimate> e = EstimateProbabilityMonteCarlo(
      MakeOneWayPath(2), h, /*seed=*/7, options);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->estimate, 1.0);
  EXPECT_EQ(e->hits, 200u);

  ProbGraph h0(3);
  AddEdgeOrDie(&h0, 0, 1, 0, Rational::Zero());
  AddEdgeOrDie(&h0, 1, 2, 0, Rational::One());
  e = EstimateProbabilityMonteCarlo(MakeOneWayPath(2), h0, 7, options);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->estimate, 0.0);
}

TEST(MonteCarlo, ConvergesToExactAnswer) {
  Rng rng(401);
  for (int trial = 0; trial < 6; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomPolytree(&rng, 8, 1), 3);
    DiGraph q = MakeOneWayPath(2);
    double exact = SolveProbability(q, h)->ToDouble();
    MonteCarloOptions options;
    options.samples = 40'000;
    Result<MonteCarloEstimate> e =
        EstimateProbabilityMonteCarlo(q, h, 1000 + trial, options);
    ASSERT_TRUE(e.ok());
    // 5 sigma-ish margin: half_width_95 is ~2 sigma, use 3x.
    EXPECT_NEAR(e->estimate, exact,
                3.0 * e->half_width_95 + 1e-3)
        << "trial " << trial;
  }
}

TEST(MonteCarlo, DeterministicPerSeed) {
  Rng rng(402);
  ProbGraph h = AttachRandomProbabilities(&rng, RandomPolytree(&rng, 6, 1), 2);
  DiGraph q = MakeOneWayPath(1);
  MonteCarloOptions options;
  options.samples = 500;
  MonteCarloEstimate a =
      *EstimateProbabilityMonteCarlo(q, h, 42, options);
  MonteCarloEstimate b =
      *EstimateProbabilityMonteCarlo(q, h, 42, options);
  EXPECT_EQ(a.hits, b.hits);
  MonteCarloEstimate c =
      *EstimateProbabilityMonteCarlo(q, h, 43, options);
  // Different seed: almost surely different hit count on 500 samples; allow
  // equality but check the API plumbed the seed through (estimates finite).
  EXPECT_GE(c.samples, 500u);
}

TEST(MonteCarlo, RejectsZeroSamples) {
  ProbGraph h(2);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  MonteCarloOptions options;
  options.samples = 0;
  EXPECT_FALSE(
      EstimateProbabilityMonteCarlo(MakeOneWayPath(1), h, 1, options).ok());
}

// ---------------------------------------------------------------------------
// Budgeted sampling: the fine-grained cancellation and stop rules the serve
// layer's degradation path relies on (all deterministic: the token states
// are fixed before the call).
// ---------------------------------------------------------------------------

ProbGraph HalfEdgePath(size_t edges) {
  ProbGraph h(edges + 1);
  for (size_t v = 0; v < edges; ++v) {
    AddEdgeOrDie(&h, v, v + 1, 0, Rational::Half());
  }
  return h;
}

TEST(MonteCarloBudget, CancelledTokenAbortsRegardlessOfMinSamples) {
  ProbGraph h = HalfEdgePath(3);
  CancelToken token;
  token.Cancel();
  MonteCarloOptions options;
  options.samples = 10'000;
  options.min_samples = 100;  // a floor never outranks an explicit cancel
  options.cancel = &token;
  Result<MonteCarloEstimate> e =
      EstimateProbabilityMonteCarlo(MakeOneWayPath(1), h, 3, options);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Status::Code::kCancelled);
}

TEST(MonteCarloBudget, ExpiredDeadlineWithoutFloorIsDeadlineExceeded) {
  ProbGraph h = HalfEdgePath(3);
  CancelToken token;
  token.SetDeadline(CancelToken::Clock::now() - std::chrono::seconds(1));
  MonteCarloOptions options;
  options.samples = 10'000;  // min_samples = 0: behave like any exact kernel
  options.cancel = &token;
  Result<MonteCarloEstimate> e =
      EstimateProbabilityMonteCarlo(MakeOneWayPath(1), h, 3, options);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Status::Code::kDeadlineExceeded);
}

TEST(MonteCarloBudget, ExpiredDeadlineTruncatesAtTheFloorDeterministically) {
  ProbGraph h = HalfEdgePath(3);
  CancelToken token;
  token.SetDeadline(CancelToken::Clock::now() - std::chrono::seconds(1));
  MonteCarloOptions options;
  options.samples = 1'000'000;
  options.min_samples = 512;
  options.check_interval = 128;  // divides the floor: stop exactly there
  options.cancel = &token;
  Result<MonteCarloEstimate> e =
      EstimateProbabilityMonteCarlo(MakeOneWayPath(2), h, 5, options);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->deadline_truncated);
  EXPECT_FALSE(e->converged);
  EXPECT_EQ(e->samples, 512u);
  EXPECT_DOUBLE_EQ(e->estimate,
                   static_cast<double>(e->hits) / static_cast<double>(512));

  // Same seed, same floor → bit-identical truncated estimate.
  Result<MonteCarloEstimate> again =
      EstimateProbabilityMonteCarlo(MakeOneWayPath(2), h, 5, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->hits, e->hits);
  EXPECT_EQ(again->samples, e->samples);
}

TEST(MonteCarloBudget, TargetHalfWidthStopsEarlyWithConsistentEstimate) {
  ProbGraph h = HalfEdgePath(2);
  MonteCarloOptions options;
  options.samples = 1'000'000;
  options.target_half_width = 0.05;
  options.check_interval = 64;
  Result<MonteCarloEstimate> e =
      EstimateProbabilityMonteCarlo(MakeOneWayPath(1), h, 11, options);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->converged);
  EXPECT_FALSE(e->deadline_truncated);
  EXPECT_LT(e->samples, 1'000'000u) << "must stop well before the cap";
  EXPECT_LE(e->half_width_95, 0.05);
  double p = e->estimate;
  EXPECT_DOUBLE_EQ(
      e->half_width_95,
      1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(e->samples)));
}

TEST(MonteCarloBudget, TargetRuleIgnoresDegenerateBoundaryEstimates) {
  // True p = 0: every chunk boundary sees hits == 0, where the normal
  // approximation degenerates to half-width 0. The target rule must NOT
  // declare convergence on that — the run goes to the sample cap.
  ProbGraph zero(3);
  AddEdgeOrDie(&zero, 0, 1, 0, Rational::Zero());
  AddEdgeOrDie(&zero, 1, 2, 0, Rational::Zero());
  MonteCarloOptions options;
  options.samples = 1'000;
  options.target_half_width = 0.1;
  options.check_interval = 64;
  Result<MonteCarloEstimate> e =
      EstimateProbabilityMonteCarlo(MakeOneWayPath(2), zero, 23, options);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->converged)
      << "an all-miss prefix must not claim a met confidence target";
  EXPECT_EQ(e->samples, 1'000u);
  EXPECT_EQ(e->hits, 0u);
}

TEST(MonteCarloBudget, IdleTokenChangesNothing) {
  ProbGraph h = HalfEdgePath(4);
  MonteCarloOptions plain;
  plain.samples = 2'000;
  MonteCarloEstimate baseline =
      *EstimateProbabilityMonteCarlo(MakeOneWayPath(2), h, 17, plain);

  CancelToken idle;
  idle.SetDeadline(CancelToken::Clock::now() + std::chrono::hours(1));
  MonteCarloOptions gated = plain;
  gated.cancel = &idle;
  gated.min_samples = 100;
  MonteCarloEstimate e =
      *EstimateProbabilityMonteCarlo(MakeOneWayPath(2), h, 17, gated);
  EXPECT_EQ(e.hits, baseline.hits);
  EXPECT_EQ(e.samples, baseline.samples);
  EXPECT_FALSE(e.deadline_truncated);
  EXPECT_FALSE(e.converged);
}

}  // namespace
}  // namespace phom
