#include "src/core/monte_carlo.h"

#include <gtest/gtest.h>

#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

TEST(MonteCarlo, DegenerateProbabilities) {
  ProbGraph h(3);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::One());
  AddEdgeOrDie(&h, 1, 2, 0, Rational::One());
  MonteCarloOptions options;
  options.samples = 200;
  Result<MonteCarloEstimate> e = EstimateProbabilityMonteCarlo(
      MakeOneWayPath(2), h, /*seed=*/7, options);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->estimate, 1.0);
  EXPECT_EQ(e->hits, 200u);

  ProbGraph h0(3);
  AddEdgeOrDie(&h0, 0, 1, 0, Rational::Zero());
  AddEdgeOrDie(&h0, 1, 2, 0, Rational::One());
  e = EstimateProbabilityMonteCarlo(MakeOneWayPath(2), h0, 7, options);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->estimate, 0.0);
}

TEST(MonteCarlo, ConvergesToExactAnswer) {
  Rng rng(401);
  for (int trial = 0; trial < 6; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomPolytree(&rng, 8, 1), 3);
    DiGraph q = MakeOneWayPath(2);
    double exact = SolveProbability(q, h)->ToDouble();
    MonteCarloOptions options;
    options.samples = 40'000;
    Result<MonteCarloEstimate> e =
        EstimateProbabilityMonteCarlo(q, h, 1000 + trial, options);
    ASSERT_TRUE(e.ok());
    // 5 sigma-ish margin: half_width_95 is ~2 sigma, use 3x.
    EXPECT_NEAR(e->estimate, exact,
                3.0 * e->half_width_95 + 1e-3)
        << "trial " << trial;
  }
}

TEST(MonteCarlo, DeterministicPerSeed) {
  Rng rng(402);
  ProbGraph h = AttachRandomProbabilities(&rng, RandomPolytree(&rng, 6, 1), 2);
  DiGraph q = MakeOneWayPath(1);
  MonteCarloOptions options;
  options.samples = 500;
  MonteCarloEstimate a =
      *EstimateProbabilityMonteCarlo(q, h, 42, options);
  MonteCarloEstimate b =
      *EstimateProbabilityMonteCarlo(q, h, 42, options);
  EXPECT_EQ(a.hits, b.hits);
  MonteCarloEstimate c =
      *EstimateProbabilityMonteCarlo(q, h, 43, options);
  // Different seed: almost surely different hit count on 500 samples; allow
  // equality but check the API plumbed the seed through (estimates finite).
  EXPECT_GE(c.samples, 500u);
}

TEST(MonteCarlo, RejectsZeroSamples) {
  ProbGraph h(2);
  AddEdgeOrDie(&h, 0, 1, 0, Rational::Half());
  MonteCarloOptions options;
  options.samples = 0;
  EXPECT_FALSE(
      EstimateProbabilityMonteCarlo(MakeOneWayPath(1), h, 1, options).ok());
}

}  // namespace
}  // namespace phom
