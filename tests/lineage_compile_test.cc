#include "src/lineage/dnf_compile.h"

#include <gtest/gtest.h>

#include "src/circuits/dnnf.h"
#include "src/core/algo_dwt.h"
#include "src/core/algo_two_way_path.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/lineage/dnf_prob.h"

namespace phom {
namespace {

std::vector<Rational> RandomProbs(Rng* rng, uint32_t n) {
  std::vector<Rational> probs;
  for (uint32_t i = 0; i < n; ++i) probs.push_back(rng->DyadicProbability(3));
  return probs;
}

TEST(DnfCompile, Constants) {
  MonotoneDnf f(2);
  DnnfCompilation c = *CompileDnfToDnnf(f);
  EXPECT_FALSE(c.circuit.Evaluate(c.root_gate, {false, false}));
  f.AddClause({});
  c = *CompileDnfToDnnf(f);
  EXPECT_TRUE(c.circuit.Evaluate(c.root_gate, {true, false}));
}

TEST(DnfCompile, ComputesTheSameBooleanFunction) {
  Rng rng(501);
  for (int trial = 0; trial < 120; ++trial) {
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(1, 8));
    MonotoneDnf f(n);
    for (int c = 0, k = rng.UniformInt(1, 5); c < k; ++c) {
      std::vector<uint32_t> clause;
      for (int i = 0, w = rng.UniformInt(1, 3); i < w; ++i) {
        clause.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
      }
      f.AddClause(std::move(clause));
    }
    DnnfCompilation compiled = *CompileDnfToDnnf(f);
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<bool> a(n);
      for (uint32_t i = 0; i < n; ++i) a[i] = (mask >> i) & 1;
      EXPECT_EQ(compiled.circuit.Evaluate(compiled.root_gate, a),
                f.EvaluatesTrue(a))
          << trial << " mask " << mask;
    }
  }
}

TEST(DnfCompile, OutputIsDnnf) {
  Rng rng(502);
  for (int trial = 0; trial < 60; ++trial) {
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(2, 10));
    MonotoneDnf f(n);
    for (int c = 0, k = rng.UniformInt(1, 5); c < k; ++c) {
      std::vector<uint32_t> clause;
      for (int i = 0, w = rng.UniformInt(1, 3); i < w; ++i) {
        clause.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
      }
      f.AddClause(std::move(clause));
    }
    DnnfCompilation compiled = *CompileDnfToDnnf(f);
    EXPECT_TRUE(
        ValidateDecomposability(compiled.circuit, compiled.root_gate).ok())
        << trial;
    if (n <= 12) {
      EXPECT_TRUE(ValidateDeterminismExhaustive(compiled.circuit,
                                                compiled.root_gate)
                      .ok())
          << trial;
    }
  }
}

TEST(DnfCompile, ProbabilityAgreesWithShannonEngine) {
  Rng rng(503);
  for (int trial = 0; trial < 80; ++trial) {
    uint32_t n = static_cast<uint32_t>(rng.UniformInt(1, 9));
    MonotoneDnf f(n);
    for (int c = 0, k = rng.UniformInt(1, 5); c < k; ++c) {
      std::vector<uint32_t> clause;
      for (int i = 0, w = rng.UniformInt(1, 3); i < w; ++i) {
        clause.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
      }
      f.AddClause(std::move(clause));
    }
    std::vector<Rational> probs = RandomProbs(&rng, n);
    DnnfCompilation compiled = *CompileDnfToDnnf(f);
    Rational via_circuit =
        DnnfProbability(compiled.circuit, compiled.root_gate, probs);
    EXPECT_EQ(via_circuit, *DnfProbabilityShannon(f, probs)) << trial;
  }
}

TEST(DnfCompile, TwoWayPathLineagesCompileSmall) {
  // Prop. 4.11 lineages (interval DNFs) should compile to circuits of size
  // polynomial in the path length; empirically near-linear gate counts.
  Rng rng(504);
  size_t gates_at_64 = 0;
  size_t gates_at_256 = 0;
  for (size_t n : {64u, 256u}) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomTwoWayPath(&rng, n, 1), 3);
    MonotoneDnf lineage(0);
    ASSERT_TRUE(SolveConnectedOn2wpComponent(MakeArrowPath("><>"), h, nullptr,
                                             &lineage)
                    .ok());
    DnnfCompilation compiled = *CompileDnfToDnnf(lineage);
    if (n == 64) gates_at_64 = compiled.circuit.num_gates();
    if (n == 256) gates_at_256 = compiled.circuit.num_gates();
  }
  // 4x input growth should not blow up gate count by more than ~8x.
  EXPECT_LT(gates_at_256, 8 * gates_at_64 + 64);
}

TEST(DnfCompile, DwtLineagesCompileViaComponentRule) {
  // Prop. 4.10 lineages: rootward path clauses in a branching tree need the
  // disjoint-component construction for polynomial size.
  Rng rng(505);
  ProbGraph h = AttachRandomProbabilities(
      &rng, RandomDownwardTree(&rng, 200, 1, 0.3), 3);
  MonotoneDnf lineage(0);
  ASSERT_TRUE(
      SolvePathOnDwtForestViaLineage({0, 0}, h, &lineage).ok());
  ShannonOptions options;
  DnnfCompilation compiled = *CompileDnfToDnnf(lineage, options);
  EXPECT_GT(compiled.stats.component_splits, 0u);
  // Probability through the compiled circuit equals the direct DP.
  Rational via_circuit =
      DnnfProbability(compiled.circuit, compiled.root_gate, h.probs());
  EXPECT_EQ(via_circuit, *SolvePathOnDwtForest({0, 0}, h));
}

TEST(DnfCompile, StateLimit) {
  Rng rng(506);
  uint32_t n = 30;
  MonotoneDnf f(n);
  for (int c = 0; c < 40; ++c) {
    std::vector<uint32_t> clause;
    for (int i = 0; i < 6; ++i) {
      clause.push_back(static_cast<uint32_t>(rng.UniformInt(0, n - 1)));
    }
    f.AddClause(std::move(clause));
  }
  ShannonOptions options;
  options.max_states = 4;
  Result<DnnfCompilation> r = CompileDnfToDnnf(f, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kResourceExhausted);
}

}  // namespace
}  // namespace phom
