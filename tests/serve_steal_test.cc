#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/executor.h"
#include "src/serve/relaxed_queue.h"
#include "src/serve/request.h"
#include "src/serve/work_steal_deque.h"
#include "tests/test_util.h"

/// Tier-1 coverage of the work-stealing scheduling core (executor.h):
/// WorkStealDeque and RelaxedBlockQueue in isolation (ordering, bounds,
/// conservation under concurrency), the steal-interleaving bit-identity
/// fuzz (randomized victim seeds x thread counts x backends x stealing
/// on/off, all against the serial baseline), a deterministic forced-steal
/// gate (every fanned-out component task must be stolen), and the EDF
/// heap-overflow regression: displacement runs the EARLIEST entry inline,
/// never the incoming one.

namespace phom {
namespace {

using serve::BatchExecutor;
using serve::ExecutorOptions;
using serve::RelaxedBlockQueue;
using serve::RequestClock;
using serve::SolveRequest;
using serve::SolveTicket;
using serve::WorkStealDeque;
using test_util::GateOpener;
using test_util::MixedServeInstance;
using test_util::MixedServeQueries;
using test_util::TestGate;

void EnsureGateEngineRegistered() {
  test_util::EnsureGateEngineRegistered("steal-test-gate");
}

void ExpectResultsBitIdentical(const Result<SolveResult>& serial,
                               const Result<SolveResult>& parallel,
                               const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(serial.ok(), parallel.ok());
  if (!serial.ok()) {
    EXPECT_EQ(serial.status().code(), parallel.status().code());
    EXPECT_EQ(serial.status().message(), parallel.status().message());
    return;
  }
  EXPECT_EQ(serial->probability, parallel->probability);
  EXPECT_EQ(std::bit_cast<uint64_t>(serial->probability_double),
            std::bit_cast<uint64_t>(parallel->probability_double))
      << "double answers must match bit for bit";
  EXPECT_EQ(serial->numeric, parallel->numeric);
  EXPECT_EQ(serial->stats.engine, parallel->stats.engine);
  EXPECT_EQ(serial->stats.components, parallel->stats.components);
  EXPECT_EQ(serial->analysis.cell, parallel->analysis.cell);
}

// ---------------------------------------------------------------------------
// WorkStealDeque unit coverage.
// ---------------------------------------------------------------------------

TEST(WorkStealDeque, OwnerPopsLifoThievesStealFifo) {
  WorkStealDeque<int> deque(8);
  for (int v = 1; v <= 3; ++v) {
    auto node = std::make_unique<int>(v);
    ASSERT_TRUE(deque.PushBottom(node));
    EXPECT_EQ(node, nullptr) << "push consumes the node";
  }
  std::unique_ptr<int> out;
  ASSERT_TRUE(deque.PopBottom(&out));
  EXPECT_EQ(*out, 3) << "owner pops the most recent push";
  ASSERT_TRUE(deque.TrySteal(&out));
  EXPECT_EQ(*out, 1) << "thieves steal the oldest push";
  ASSERT_TRUE(deque.PopBottom(&out));
  EXPECT_EQ(*out, 2);
  EXPECT_FALSE(deque.PopBottom(&out));
  EXPECT_FALSE(deque.TrySteal(&out));
}

TEST(WorkStealDeque, BoundedPushFailsWhenFullAndKeepsTheNode) {
  WorkStealDeque<int> deque(2);
  EXPECT_EQ(deque.capacity(), 2u);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  auto c = std::make_unique<int>(3);
  ASSERT_TRUE(deque.PushBottom(a));
  ASSERT_TRUE(deque.PushBottom(b));
  EXPECT_FALSE(deque.PushBottom(c));
  ASSERT_NE(c, nullptr) << "a failed push leaves the node with the caller";
  EXPECT_EQ(*c, 3);
  // Draining one slot re-admits the spare node.
  std::unique_ptr<int> out;
  ASSERT_TRUE(deque.TrySteal(&out));
  EXPECT_TRUE(deque.PushBottom(c));
}

TEST(WorkStealDeque, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(WorkStealDeque<int>(0).capacity(), 2u);
  EXPECT_EQ(WorkStealDeque<int>(3).capacity(), 4u);
  EXPECT_EQ(WorkStealDeque<int>(256).capacity(), 256u);
}

TEST(WorkStealDeque, ConservationUnderConcurrentSteals) {
  // Owner pushes 0..N-1 (popping a few itself); thieves steal concurrently.
  // Every value must come out exactly once — no loss, no duplication.
  constexpr int kN = 512;
  constexpr int kThieves = 2;
  WorkStealDeque<int> deque(64);
  std::vector<std::atomic<int>> seen(kN);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::unique_ptr<int> out;
      while (!done.load(std::memory_order_acquire) ||
             consumed.load(std::memory_order_relaxed) < kN) {
        if (deque.TrySteal(&out)) {
          seen[*out].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::unique_ptr<int> out;
  for (int v = 0; v < kN; ++v) {
    auto node = std::make_unique<int>(v);
    while (!deque.PushBottom(node)) {
      // Full: help drain from the owner side.
      if (deque.PopBottom(&out)) {
        seen[*out].fetch_add(1, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (v % 3 == 0 && deque.PopBottom(&out)) {
      seen[*out].fetch_add(1, std::memory_order_relaxed);
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  while (deque.PopBottom(&out)) {
    seen[*out].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();
  for (int v = 0; v < kN; ++v) {
    EXPECT_EQ(seen[v].load(std::memory_order_relaxed), 1)
        << "value " << v << " lost or duplicated";
  }
}

// ---------------------------------------------------------------------------
// RelaxedBlockQueue unit coverage.
// ---------------------------------------------------------------------------

TEST(RelaxedBlockQueue, SingleBlockIsStrictFifo) {
  RelaxedBlockQueue<int> q(8, 1);
  EXPECT_EQ(q.blocks(), 1u);
  EXPECT_EQ(q.capacity(), 8u);
  for (int v = 0; v < 8; ++v) ASSERT_TRUE(q.TryPush(v));
  EXPECT_FALSE(q.TryPush(99));
  int out = -1;
  for (int v = 0; v < 8; ++v) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, v) << "one block is the plain Vyukov FIFO";
  }
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(RelaxedBlockQueue, TinyCapacityClampsToOneBlock) {
  // A capacity-2 queue cannot split (no block may drop below 2 cells), so a
  // large block request degenerates to one strict-FIFO block of exactly 2 —
  // the configuration the executor's full-queue inline-run tests pin.
  RelaxedBlockQueue<int> q(2, 8);
  EXPECT_EQ(q.blocks(), 1u);
  EXPECT_EQ(q.capacity(), 2u);
  ASSERT_TRUE(q.TryPush(1));
  ASSERT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3)) << "exactly two slots";
  int out = -1;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(RelaxedBlockQueue, BlockCountClampsAgainstCapacity) {
  RelaxedBlockQueue<int> wide(16, 4);
  EXPECT_EQ(wide.blocks(), 4u);
  EXPECT_EQ(wide.capacity(), 16u);
  RelaxedBlockQueue<int> narrow(4, 64);  // 64 blocks of <2 cells: clamp to 2
  EXPECT_EQ(narrow.blocks(), 2u);
  EXPECT_EQ(narrow.capacity(), 4u);
}

TEST(RelaxedBlockQueue, ExactEmptinessAndFullnessAcrossBlocks) {
  // TryPush/TryPop probe every block before failing: pushes succeed until
  // the TOTAL capacity is reached regardless of cursor positions, and pops
  // drain every element before reporting empty.
  RelaxedBlockQueue<int> q(8, 4);
  EXPECT_EQ(q.blocks(), 4u);
  for (int v = 0; v < 8; ++v) ASSERT_TRUE(q.TryPush(v)) << "push " << v;
  EXPECT_FALSE(q.TryPush(99)) << "full only at total capacity";
  std::vector<bool> seen(8, false);
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    ASSERT_GE(out, 0);
    ASSERT_LT(out, 8);
    EXPECT_FALSE(seen[out]) << "duplicate " << out;
    seen[out] = true;
  }
  EXPECT_FALSE(q.TryPop(&out)) << "empty only when every block is empty";
}

TEST(RelaxedBlockQueue, ConservationUnderConcurrentProducersConsumers) {
  constexpr int kPerProducer = 400;
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  RelaxedBlockQueue<int> q(64, 4);
  std::vector<std::atomic<int>> seen(kPerProducer * kProducers);
  for (auto& s : seen) s.store(0, std::memory_order_relaxed);
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = p * kPerProducer + i;
        while (!q.TryPush(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int out = -1;
      while (consumed.load(std::memory_order_relaxed) <
             kPerProducer * kProducers) {
        if (q.TryPop(&out)) {
          seen[out].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t v = 0; v < seen.size(); ++v) {
    EXPECT_EQ(seen[v].load(std::memory_order_relaxed), 1)
        << "value " << v << " lost or duplicated";
  }
}

// ---------------------------------------------------------------------------
// Steal-interleaving fuzz: randomized victim order x thread counts x
// backends x stealing on/off, always bit-identical to serial.
// ---------------------------------------------------------------------------

class ServeStealFuzzTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ServeStealFuzzTest, BitIdenticalAcrossStealSchedules) {
  const size_t threads = GetParam();
  for (NumericBackend backend :
       {NumericBackend::kExact, NumericBackend::kDouble}) {
    Rng rng(424243);
    ProbGraph instance = MixedServeInstance(&rng);
    std::vector<DiGraph> queries = MixedServeQueries(&rng);
    std::vector<DiGraph> batch = queries;
    batch.insert(batch.end(), queries.begin(), queries.end());

    SolveOptions options;
    options.numeric = backend;
    EvalSession serial_session(instance, options);
    std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);

    for (bool stealing : {true, false}) {
      for (uint64_t seed : {uint64_t{0x9e3779b97f4a7c15ull}, uint64_t{12345},
                            uint64_t{0xfeedfacecafebeefull}}) {
        ExecutorOptions exec_options;
        exec_options.threads = threads;
        exec_options.enable_stealing = stealing;
        exec_options.steal_seed = seed;
        // Small deque + multi-block injection: force overflow and
        // cross-block interleavings, not just the happy path.
        exec_options.steal_deque_capacity = 4;
        exec_options.injection_blocks = 4;
        exec_options.queue_capacity = 32;
        BatchExecutor executor(exec_options);
        EvalSession session(instance, options);
        std::vector<SolveRequest> requests;
        requests.reserve(batch.size());
        for (const DiGraph& q : batch) requests.push_back(SolveRequest(q));
        std::vector<SolveTicket> tickets =
            executor.SubmitBatch(session, std::move(requests));
        std::vector<Result<SolveResult>> parallel =
            BatchExecutor::Collect(tickets);

        const std::string label =
            std::string("backend=") + ToString(backend) +
            " threads=" + std::to_string(threads) +
            " stealing=" + (stealing ? "on" : "off") +
            " seed=" + std::to_string(seed);
        ASSERT_EQ(serial.size(), parallel.size());
        for (size_t i = 0; i < serial.size(); ++i) {
          ExpectResultsBitIdentical(serial[i], parallel[i],
                                    label + " query " + std::to_string(i));
        }
        if (!stealing) {
          EXPECT_EQ(executor.stats().tasks_stolen, 0u)
              << "stealing disabled must never steal";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ServeStealFuzzTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "Threads" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Forced steal: park the fanning worker so every remaining component task
// MUST be stolen, and the result is still bit-identical.
// ---------------------------------------------------------------------------

TEST(ServeStealForced, ParkedFanningWorkerHasItsComponentsStolen) {
  for (size_t threads : {size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Rng rng(515253);
    ProbGraph instance = MixedServeInstance(&rng);
    DiGraph query = MakeLabeledPath({0, 1});  // 3 instance components
    EvalSession serial_session(instance);
    Result<SolveResult> serial = serial_session.Solve(query);

    // The FIRST worker to fan a request out parks in the hook until the
    // ticket completes; it already ran component 0 inline, so components
    // 1..n-1 sit in its deque and can only finish by being STOLEN (the
    // collector below uses the pure, non-helping wait).
    std::mutex mu;
    std::condition_variable cv;
    bool parked = false;
    bool release = false;
    ExecutorOptions exec_options;
    exec_options.threads = threads;
    exec_options.test_after_fanout = [&](size_t) {
      std::unique_lock<std::mutex> lock(mu);
      if (parked) return;  // only the first fanning worker parks
      parked = true;
      cv.wait(lock, [&] { return release; });
    };
    BatchExecutor executor(exec_options);
    EvalSession session(instance);
    SolveTicket ticket = executor.Submit(session, SolveRequest(query));
    Result<SolveResult> parallel = ticket.Get();  // pure wait: thieves finish it
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();

    ExpectResultsBitIdentical(serial, parallel, "forced steal");
    EXPECT_GE(executor.stats().tasks_stolen, 1u)
        << "the parked worker's remaining components must have been stolen";
  }
}

// ---------------------------------------------------------------------------
// EDF heap overflow: the EARLIEST entry runs inline, not the incoming one
// (regression for the pre-rebuild bypass of slack ordering).
// ---------------------------------------------------------------------------

TEST(ServeStealEdf, HeapOverflowDisplacesEarliestInline) {
  EnsureGateEngineRegistered();
  TestGate()->Reset();
  Rng rng(616263);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);
  // One worker, heap capacity 2 (= queue_capacity at one thread). With the
  // worker parked, D1(60s) and D2(50s) fill the heap; submitting D3(55s)
  // overflows it. The fixed policy inserts D3 and runs the EARLIEST entry —
  // D2 — inline on the submitter; the old policy ran D3, the incoming task,
  // bypassing slack order. Completion order must be D2, D3, D1.
  ExecutorOptions exec_options;
  exec_options.threads = 1;
  exec_options.queue_capacity = 2;
  exec_options.split_components = false;  // whole-request tasks: one per D
  BatchExecutor executor(exec_options);
  GateOpener opener;

  SolveRequest blocker(MakeLabeledPath({0}));
  blocker.WithEngine("steal-test-gate");
  SolveTicket blocked = executor.Submit(session, std::move(blocker));
  TestGate()->AwaitEntered(1);

  std::mutex order_mu;
  std::vector<std::string> order;
  auto tracked = [&](const std::string& name) {
    return [&order_mu, &order, name](const Result<SolveResult>&,
                                     const serve::RequestStats&) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
    };
  };
  const RequestClock::time_point now = RequestClock::now();
  SolveRequest d1(MakeLabeledPath({0}));
  d1.WithDeadline(now + std::chrono::seconds(60));
  SolveRequest d2(MakeLabeledPath({1, 0}));
  d2.WithDeadline(now + std::chrono::seconds(50));
  SolveRequest d3(MakeLabeledPath({0, 1, 0}));
  d3.WithDeadline(now + std::chrono::seconds(55));

  SolveTicket t1 = executor.Submit(session, std::move(d1), tracked("D1"));
  SolveTicket t2 = executor.Submit(session, std::move(d2), tracked("D2"));
  EXPECT_EQ(executor.stats().edf_displaced_runs, 0u);
  SolveTicket t3 = executor.Submit(session, std::move(d3), tracked("D3"));
  // The displaced earliest entry (D2) ran inline DURING the submit above.
  EXPECT_EQ(executor.stats().edf_displaced_runs, 1u);
  EXPECT_TRUE(t2.done()) << "D2 (earliest) ran inline at overflow";
  EXPECT_FALSE(t1.done());
  EXPECT_FALSE(t3.done());

  TestGate()->Open();
  ASSERT_TRUE(blocked.Get().ok());
  ASSERT_TRUE(t1.Get().ok());
  ASSERT_TRUE(t2.Get().ok());
  ASSERT_TRUE(t3.Get().ok());
  std::lock_guard<std::mutex> lock(order_mu);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "D2") << "earliest effective deadline first";
  EXPECT_EQ(order[1], "D3") << "remaining heap entries drain in EDF order";
  EXPECT_EQ(order[2], "D1");
}

}  // namespace
}  // namespace phom
