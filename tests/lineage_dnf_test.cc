#include "src/lineage/dnf.h"

#include <gtest/gtest.h>

namespace phom {
namespace {

TEST(MonotoneDnf, Constants) {
  MonotoneDnf f(3);
  EXPECT_TRUE(f.IsConstantFalse());
  EXPECT_FALSE(f.IsConstantTrue());
  f.AddClause({});
  EXPECT_TRUE(f.IsConstantTrue());
  EXPECT_EQ(f.ToString(), "true");
}

TEST(MonotoneDnf, Evaluate) {
  MonotoneDnf f(4);
  f.AddClause({0, 1});
  f.AddClause({2});
  EXPECT_TRUE(f.EvaluatesTrue({true, true, false, false}));
  EXPECT_TRUE(f.EvaluatesTrue({false, false, true, false}));
  EXPECT_FALSE(f.EvaluatesTrue({true, false, false, true}));
  EXPECT_FALSE(f.EvaluatesTrue({false, true, false, false}));
}

TEST(MonotoneDnf, ClauseNormalization) {
  MonotoneDnf f(4);
  f.AddClause({3, 1, 1, 2});
  EXPECT_EQ(f.clauses()[0], (std::vector<uint32_t>{1, 2, 3}));
}

TEST(MonotoneDnf, RemoveSubsumed) {
  MonotoneDnf f(5);
  f.AddClause({0, 1, 2});
  f.AddClause({0, 1});
  f.AddClause({0, 1});     // duplicate
  f.AddClause({3});
  f.AddClause({3, 4});
  f.RemoveSubsumed();
  EXPECT_EQ(f.num_clauses(), 2u);
  EXPECT_EQ(f.clauses()[0], (std::vector<uint32_t>{3}));
  EXPECT_EQ(f.clauses()[1], (std::vector<uint32_t>{0, 1}));
}

TEST(MonotoneDnf, SubsumptionPreservesSemantics) {
  MonotoneDnf f(4);
  f.AddClause({0, 1, 2});
  f.AddClause({1, 2});
  f.AddClause({0, 3});
  MonotoneDnf g = f;
  g.RemoveSubsumed();
  for (uint32_t mask = 0; mask < 16; ++mask) {
    std::vector<bool> a(4);
    for (int i = 0; i < 4; ++i) a[i] = (mask >> i) & 1;
    EXPECT_EQ(f.EvaluatesTrue(a), g.EvaluatesTrue(a)) << mask;
  }
}

TEST(MonotoneDnf, ToHypergraph) {
  MonotoneDnf f(4);
  f.AddClause({0, 1});
  f.AddClause({1, 2});
  Hypergraph h = f.ToHypergraph();
  EXPECT_EQ(h.num_hyperedges(), 2u);
  EXPECT_TRUE(f.IsBetaAcyclic());
  f.AddClause({2, 0});
  EXPECT_FALSE(f.IsBetaAcyclic());  // β-cycle
}

TEST(MonotoneDnf, OutOfRangeVariableIsABug) {
  MonotoneDnf f(2);
  EXPECT_THROW(f.AddClause({2}), std::logic_error);
}

}  // namespace
}  // namespace phom
