#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/core/eval_session.h"
#include "src/core/monte_carlo.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/async.h"
#include "src/serve/cost_model.h"
#include "src/serve/executor.h"
#include "src/serve/request.h"
#include "tests/test_util.h"

/// Tier-1 coverage of width-aware result escalation (EscalationPolicy,
/// solver.h; BatchExecutor::MaybeEscalate, serve/executor.h):
///
///  * the trigger predicate — off mode, absolute and relative thresholds,
///    and the invalid-width (NaN / hi < lo) escape hatch;
///  * the end-to-end path — a too-wide certified interval answer is re-run
///    under the exact backend, BIT-IDENTICAL to a cold exact solve of the
///    same request, with EscalateInfo/RequestStats/ExecutorStats provenance
///    all reconciling (attempted == succeeded + budget_denied + kept);
///  * the acceptance criterion — WithMaxWidth on a tractable cell never
///    returns a silent wide interval: the answer either meets the target or
///    escalates to exact;
///  * budget denial — a primed cost model predicting a hopeless exact
///    re-run keeps the certified interval answer instead;
///  * escalation off — interval results are bit-identical to the serial
///    session at thread counts 1/2/8, and no escalation counter moves;
///  * the interval-width histogram conservation law — sum(buckets) equals
///    the number of certified interval completions (escalated results are
///    counted once, at their pre-escalation width; uncertified degraded
///    estimates are never counted);
///  * the tightest-enclosure routing opt-in (SelectTightestEngine) — sound
///    enclosures and untouched exact-backend requests;
///  * the CertifiedHalfWidth95(·, 0) division-by-zero regression.

namespace phom {
namespace {

using serve::BatchExecutor;
using serve::CostModel;
using serve::CostModelSnapshot;
using serve::ExecutorOptions;
using serve::ExecutorStats;
using serve::IntervalWidthBucket;
using serve::kIntervalWidthInvalid;
using serve::RequestClock;
using serve::SolveRequest;
using serve::SolveTicket;
using test_util::MixedServeInstance;
using test_util::MixedServeQueries;
using test_util::PaperFigure1;

constexpr uint64_t kSeed = 20260808;

void ExpectResultsBitIdentical(const Result<SolveResult>& serial,
                               const Result<SolveResult>& async,
                               const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(serial.ok(), async.ok());
  if (!serial.ok()) {
    EXPECT_EQ(serial.status().code(), async.status().code());
    return;
  }
  EXPECT_EQ(serial->probability, async->probability);
  EXPECT_EQ(std::bit_cast<uint64_t>(serial->probability_double),
            std::bit_cast<uint64_t>(async->probability_double));
  EXPECT_EQ(std::bit_cast<uint64_t>(serial->bound.lo),
            std::bit_cast<uint64_t>(async->bound.lo));
  EXPECT_EQ(std::bit_cast<uint64_t>(serial->bound.hi),
            std::bit_cast<uint64_t>(async->bound.hi));
  EXPECT_EQ(serial->bound.certified, async->bound.certified);
  EXPECT_EQ(serial->stats.engine, async->stats.engine);
  EXPECT_EQ(serial->stats.components, async->stats.components);
  EXPECT_EQ(serial->stats.worlds, async->stats.worlds);
}

uint64_t HistogramTotal(const ExecutorStats& stats) {
  uint64_t total = 0;
  for (uint64_t count : stats.interval_width_hist) total += count;
  return total;
}

/// Trains EVERY registered engine's cell for the whole problem and each of
/// its components, so whichever engine/dispatch the prediction resolves,
/// it reads `duration` instead of a cold prior. Used to make the exact
/// re-run look hopeless deterministically.
void PrimeAllCells(CostModel* model, const PreparedProblem& prepared,
                   std::chrono::nanoseconds duration) {
  for (const Engine* engine : EngineRegistry::Global().engines()) {
    model->RecordComponent(engine->name(),
                           prepared.analysis.instance_class.finest,
                           prepared.instance().NumUncertainEdges(), duration);
    if (prepared.context != nullptr) {
      const InstanceContext& ctx = *prepared.context;
      for (size_t c = 0; c < ctx.components.size(); ++c) {
        model->RecordComponent(engine->name(),
                               ctx.component_classes[c].finest,
                               ctx.components[c].graph.NumUncertainEdges(),
                               duration);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Trigger predicate and width-accounting bugfix units.
// ---------------------------------------------------------------------------

TEST(Escalation, ShouldEscalateWidthOffModeNeverFires) {
  EscalationPolicy off;
  EXPECT_FALSE(ShouldEscalateWidth(0.9, 1.0, off));
  off.max_width = 1e-12;  // knobs without the mode stay inert
  off.target_relative_width = 1e-12;
  EXPECT_FALSE(ShouldEscalateWidth(0.9, 1.0, off));
}

TEST(Escalation, ShouldEscalateWidthAbsoluteThresholdIsStrict) {
  EscalationPolicy policy;
  policy.mode = EscalationMode::kOnWideResult;
  policy.max_width = 1e-3;
  EXPECT_TRUE(ShouldEscalateWidth(2e-3, 0.5, policy));
  EXPECT_FALSE(ShouldEscalateWidth(5e-4, 0.5, policy));
  EXPECT_FALSE(ShouldEscalateWidth(1e-3, 0.5, policy)) << "strict >";
}

TEST(Escalation, ShouldEscalateWidthRelativeThreshold) {
  EscalationPolicy policy;
  policy.mode = EscalationMode::kOnWideResult;
  policy.target_relative_width = 0.1;
  EXPECT_TRUE(ShouldEscalateWidth(0.06, 0.5, policy));
  EXPECT_FALSE(ShouldEscalateWidth(0.04, 0.5, policy));
  // Mode on but both knobs zero: nothing can trigger.
  policy.target_relative_width = 0.0;
  EXPECT_FALSE(ShouldEscalateWidth(0.9, 1.0, policy));
}

TEST(Escalation, InvalidWidthEscalatesWheneverATriggerIsArmed) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EscalationPolicy policy;
  policy.mode = EscalationMode::kOnWideResult;
  policy.max_width = 0.5;
  // A NaN or negative width means the enclosure invariant broke; any armed
  // trigger escalates instead of comparing (the comparisons are all false
  // on NaN, which would silently KEEP the broken answer).
  EXPECT_TRUE(ShouldEscalateWidth(nan, 0.5, policy));
  EXPECT_TRUE(ShouldEscalateWidth(-1e-9, 0.5, policy));
  policy.max_width = 0.0;
  policy.target_relative_width = 0.25;
  EXPECT_TRUE(ShouldEscalateWidth(nan, 0.5, policy));
  policy.target_relative_width = 0.0;
  EXPECT_FALSE(ShouldEscalateWidth(nan, 0.5, policy)) << "no trigger armed";
}

TEST(Escalation, IntervalWidthBucketRoutesInvalidWidthsLoudly) {
  EXPECT_EQ(IntervalWidthBucket(0.0), 0u) << "point enclosures";
#ifdef NDEBUG
  // Regression: NaN (hi or lo NaN) and negative (hi < lo) widths used to
  // land in bucket 0 and masquerade as PERFECT point enclosures. They now
  // get their own loud bucket; debug builds assert instead.
  EXPECT_EQ(IntervalWidthBucket(std::numeric_limits<double>::quiet_NaN()),
            kIntervalWidthInvalid);
  EXPECT_EQ(IntervalWidthBucket(-0.25), kIntervalWidthInvalid);
  EXPECT_EQ(IntervalWidthBucket(-std::numeric_limits<double>::infinity()),
            kIntervalWidthInvalid);
#endif
  // The valid lattice is unchanged by the fix.
  EXPECT_EQ(IntervalWidthBucket(0.5), 64u);
  EXPECT_EQ(IntervalWidthBucket(1.0), 65u);
  EXPECT_EQ(IntervalWidthBucket(5e-324), 1u);
  EXPECT_LT(IntervalWidthBucket(1e-10), IntervalWidthBucket(1e-5));
}

TEST(Escalation, CertifiedHalfWidth95ZeroSamplesIsVacuousNotNaN) {
  // Regression: hits == 0 with samples == 0 divided 3.0 by zero (inf), and
  // any other zero-sample call produced NaN via 0/0. A zero-sample
  // estimator knows nothing: the vacuous-but-sound half-width is 1.
  EXPECT_EQ(CertifiedHalfWidth95(0, 0), 1.0);
  EXPECT_TRUE(std::isfinite(CertifiedHalfWidth95(0, 0)));
  // Rule-of-three boundaries and the interior normal approximation.
  EXPECT_DOUBLE_EQ(CertifiedHalfWidth95(0, 100), 0.03);
  EXPECT_DOUBLE_EQ(CertifiedHalfWidth95(100, 100), 0.03);
  const double interior = CertifiedHalfWidth95(50, 100);
  EXPECT_GT(interior, 0.0);
  EXPECT_LT(interior, 0.2);
  EXPECT_TRUE(std::isfinite(interior));
}

// ---------------------------------------------------------------------------
// End-to-end escalation through the executor.
// ---------------------------------------------------------------------------

TEST(Escalation, WideIntervalEscalatesToExactBitIdenticalAnswer) {
  PaperFigure1 fig;
  EvalSession session(fig.instance);
  ExecutorOptions options;
  options.threads = 2;
  BatchExecutor executor(options);

  // The instance's probabilities (1/10, 7/10, ...) are not dyadic, so the
  // interval conversion alone is nondegenerate: any positive threshold this
  // small must trigger the escalation.
  SolveTicket ticket = executor.Submit(
      session, SolveRequest(fig.query)
                   .WithNumeric(NumericBackend::kIntervalDouble)
                   .WithMaxWidth(1e-300));
  Result<SolveResult> r = ticket.Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->escalate.escalated);
  EXPECT_EQ(r->numeric, NumericBackend::kExact);
  EXPECT_EQ(r->probability, fig.expected);
  EXPECT_GT(r->escalate.width_before, 0.0);
  EXPECT_GE(r->escalate.budget_spent.count(), 0);
  EXPECT_TRUE(ticket.stats().escalated);
  EXPECT_FALSE(ticket.stats().degraded);
  EXPECT_EQ(ticket.stats().guarantee, Guarantee::kExact);

  // The published answer is bit-identical to a cold exact solve of the same
  // query — escalation re-dispatches the SAME prepared problem under the
  // exact backend, which is exactly what the serial session computes.
  EvalSession cold(fig.instance);
  ExpectResultsBitIdentical(cold.Solve(fig.query), r, "escalated vs cold");

  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.escalated_attempted, 1u);
  EXPECT_EQ(stats.escalated_succeeded, 1u);
  EXPECT_EQ(stats.escalated_budget_denied, 0u);
  // The histogram records the PRE-escalation width exactly once.
  EXPECT_EQ(HistogramTotal(stats), 1u);
  EXPECT_EQ(stats.interval_width_hist[IntervalWidthBucket(
                r->escalate.width_before)],
            1u);
}

TEST(Escalation, TractableCellNeverReturnsSilentWideInterval) {
  // The acceptance criterion verbatim: WithMaxWidth(1e-9) on a tractable
  // cell either meets the target or escalates — a wide interval without
  // escalate provenance is the one forbidden outcome.
  PaperFigure1 fig;
  EvalSession session(fig.instance);
  ExecutorOptions options;
  options.threads = 2;
  BatchExecutor executor(options);
  const double target = 1e-9;
  SolveTicket ticket = executor.Submit(
      session, SolveRequest(fig.query)
                   .WithNumeric(NumericBackend::kIntervalDouble)
                   .WithMaxWidth(target));
  Result<SolveResult> r = ticket.Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  if (r->escalate.escalated) {
    EXPECT_EQ(r->numeric, NumericBackend::kExact);
    EXPECT_EQ(r->probability, fig.expected);
  } else {
    EXPECT_EQ(r->numeric, NumericBackend::kIntervalDouble);
    ASSERT_TRUE(r->bound.certified);
    EXPECT_LE(r->bound.hi - r->bound.lo, target);
    // And the enclosure really contains the exact answer.
    EXPECT_LE(Rational::FromDouble(r->bound.lo), fig.expected);
    EXPECT_GE(Rational::FromDouble(r->bound.hi), fig.expected);
  }
}

TEST(Escalation, BudgetDenialKeepsTheCertifiedIntervalAnswer) {
  PaperFigure1 fig;
  EvalSession session(fig.instance);
  auto model = std::make_shared<CostModel>();
  // Make every exact re-run look like an hour of work: the deadline has
  // seconds left, so MaybeEscalate must decline and keep the interval.
  PrimeAllCells(model.get(), session.Prepare(fig.query),
                std::chrono::hours(1));
  ExecutorOptions options;
  options.threads = 1;
  options.cost_model = model;
  BatchExecutor executor(options);

  SolveTicket ticket = executor.Submit(
      session, SolveRequest(fig.query)
                   .WithNumeric(NumericBackend::kIntervalDouble)
                   .WithMaxWidth(1e-300)
                   .WithDeadline(RequestClock::now() +
                                 std::chrono::seconds(20)));
  Result<SolveResult> r = ticket.Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->escalate.escalated);
  EXPECT_EQ(r->numeric, NumericBackend::kIntervalDouble);
  ASSERT_TRUE(r->bound.certified);
  EXPECT_LE(Rational::FromDouble(r->bound.lo), fig.expected);
  EXPECT_GE(Rational::FromDouble(r->bound.hi), fig.expected);
  EXPECT_FALSE(ticket.stats().escalated);

  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.escalated_attempted, 1u);
  EXPECT_EQ(stats.escalated_succeeded, 0u);
  EXPECT_EQ(stats.escalated_budget_denied, 1u);
  // The kept interval answer is a certified completion: one histogram bump.
  EXPECT_EQ(HistogramTotal(stats), 1u);
}

TEST(Escalation, OffByDefaultBitIdenticalAcrossThreadCounts) {
  Rng rng(kSeed);
  ProbGraph instance = MixedServeInstance(&rng);
  std::vector<DiGraph> queries = MixedServeQueries(&rng);

  SolveOverrides interval;
  interval.numeric = NumericBackend::kIntervalDouble;
  EvalSession serial_session(instance);
  std::vector<Result<SolveResult>> serial;
  serial.reserve(queries.size());
  for (const DiGraph& q : queries) {
    serial.push_back(serial_session.Solve(q, interval));
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    EvalSession session(instance);
    ExecutorOptions options;
    options.threads = threads;
    BatchExecutor executor(options);
    std::vector<SolveTicket> tickets;
    tickets.reserve(queries.size());
    for (const DiGraph& q : queries) {
      tickets.push_back(executor.Submit(
          session, SolveRequest(q).WithNumeric(
                       NumericBackend::kIntervalDouble)));
    }
    std::vector<Result<SolveResult>> results =
        executor.CollectHelping(tickets);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectResultsBitIdentical(serial[i], results[i],
                                "threads=" + std::to_string(threads) +
                                    " query=" + std::to_string(i));
      if (results[i].ok()) {
        EXPECT_FALSE(results[i]->escalate.escalated);
      }
    }
    const ExecutorStats stats = executor.stats();
    EXPECT_EQ(stats.escalated_attempted, 0u);
    EXPECT_EQ(stats.escalated_succeeded, 0u);
    EXPECT_EQ(stats.escalated_budget_denied, 0u);
  }
}

// ---------------------------------------------------------------------------
// Histogram conservation: sum(buckets) == certified interval completions.
// ---------------------------------------------------------------------------

TEST(Escalation, HistogramConservesCertifiedIntervalCompletions) {
  Rng rng(kSeed + 1);
  ProbGraph instance = MixedServeInstance(&rng);
  std::vector<DiGraph> queries = MixedServeQueries(&rng);
  EvalSession session(instance);
  ExecutorOptions options;
  options.threads = 2;
  BatchExecutor executor(options);

  std::vector<SolveTicket> tickets;
  for (const DiGraph& q : queries) {
    // Interval-backend request, escalation off.
    tickets.push_back(executor.Submit(
        session,
        SolveRequest(q).WithNumeric(NumericBackend::kIntervalDouble)));
    // The same query on the exact backend must NOT be counted.
    tickets.push_back(executor.Submit(session, SolveRequest(q)));
  }
  std::vector<Result<SolveResult>> results = executor.CollectHelping(tickets);

  uint64_t certified_interval = 0;
  for (const Result<SolveResult>& r : results) {
    if (r.ok() && r->numeric == NumericBackend::kIntervalDouble &&
        r->bound.certified) {
      ++certified_interval;
    }
  }
  EXPECT_GT(certified_interval, 0u);
  EXPECT_EQ(HistogramTotal(executor.stats()), certified_interval)
      << "exactly one bump per certified interval completion";
}

TEST(Escalation, DegradedEstimatesNeverEnterTheHistogram) {
  Rng rng(kSeed + 2);
  test_util::HardCellEnumerationCase hard(&rng);
  EvalSession session(hard.instance);
  ExecutorOptions options;
  options.threads = 1;
  BatchExecutor executor(options);

  // Already-expired deadline + degrade policy: the request is admitted and
  // converted into a budgeted Monte Carlo estimate. The estimate is NOT a
  // certified enclosure, so the histogram must stay empty.
  SolveTicket ticket = executor.Submit(
      session, SolveRequest(hard.query)
                   .WithNumeric(NumericBackend::kIntervalDouble)
                   .WithDeadline(RequestClock::now() -
                                 std::chrono::milliseconds(5))
                   .WithDegradeOnDeadlineRisk());
  Result<SolveResult> r = ticket.Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->degrade.degraded);
  EXPECT_FALSE(r->bound.certified);
  EXPECT_FALSE(r->escalate.escalated);
  // Zero-budget degrade still yields finite, sound statistics
  // (CertifiedHalfWidth95 regression, end to end).
  EXPECT_TRUE(std::isfinite(r->bound.lo));
  EXPECT_TRUE(std::isfinite(r->bound.hi));
  EXPECT_EQ(HistogramTotal(executor.stats()), 0u);
}

// ---------------------------------------------------------------------------
// Tightest-enclosure routing (SelectTightestEngine).
// ---------------------------------------------------------------------------

TEST(Escalation, SelectTightestEngineLeavesNonIntervalRequestsAlone) {
  PaperFigure1 fig;
  EvalSession session(fig.instance);
  PreparedProblem prepared = session.Prepare(fig.query);
  CostModel model;
  const auto snapshot = model.Snapshot();

  SolveOptions exact_options;  // default backend: exact
  EXPECT_EQ(serve::SelectTightestEngine(*snapshot, prepared, exact_options),
            "");
  SolveOptions forced;
  forced.numeric = NumericBackend::kIntervalDouble;
  forced.force_engine = "lineage";
  EXPECT_EQ(serve::SelectTightestEngine(*snapshot, prepared, forced), "")
      << "a forced engine is the caller's ablation contract";
  // A cold model ties every candidate at the shared prior, so auto dispatch
  // is kept (strict-improvement rule).
  SolveOptions interval;
  interval.numeric = NumericBackend::kIntervalDouble;
  EXPECT_EQ(serve::SelectTightestEngine(*snapshot, prepared, interval), "");
}

TEST(Escalation, TightestEnclosureRoutingStaysSound) {
  Rng rng(kSeed + 3);
  ProbGraph instance = MixedServeInstance(&rng);
  std::vector<DiGraph> queries = MixedServeQueries(&rng);

  // Exact oracle per query, from a plain serial session.
  EvalSession oracle_session(instance);
  std::vector<Result<SolveResult>> oracle;
  for (const DiGraph& q : queries) oracle.push_back(oracle_session.Solve(q));

  EvalSession session(instance);
  ExecutorOptions options;
  options.threads = 2;
  options.cost_model = std::make_shared<CostModel>();
  options.select_tightest_enclosure = true;
  BatchExecutor executor(options);
  std::vector<SolveTicket> tickets;
  for (const DiGraph& q : queries) {
    tickets.push_back(executor.Submit(
        session,
        SolveRequest(q).WithNumeric(NumericBackend::kIntervalDouble)));
  }
  std::vector<Result<SolveResult>> results = executor.CollectHelping(tickets);
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("query=" + std::to_string(i));
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    ASSERT_TRUE(oracle[i].ok());
    const SolveResult& r = *results[i];
    ASSERT_TRUE(r.bound.certified);
    // Whatever engine the router picked, the enclosure must contain the
    // exact answer (Rational::FromDouble is lossless, so the comparison
    // is exact).
    EXPECT_LE(Rational::FromDouble(r.bound.lo), oracle[i]->probability);
    EXPECT_GE(Rational::FromDouble(r.bound.hi), oracle[i]->probability);
  }
}

// ---------------------------------------------------------------------------
// Escalation through the UCQ front door.
// ---------------------------------------------------------------------------

TEST(Escalation, UcqEscalationMatchesColdExactUnion) {
  Rng rng(kSeed + 4);
  test_util::UcqCrosscheckCase c = test_util::MakeUcqCrosscheckCase(&rng);
  EvalSession session(c.instance);
  ExecutorOptions options;
  options.threads = 2;
  BatchExecutor executor(options);

  SolveTicket ticket = executor.Submit(
      session, SolveRequest(c.ucq)
                   .WithNumeric(NumericBackend::kIntervalDouble)
                   .WithMaxWidth(1e-300));
  Result<SolveResult> r = ticket.Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<SolveResult> cold = EvalSession(c.instance).SolveUcq(c.ucq);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  if (r->escalate.escalated) {
    EXPECT_EQ(r->numeric, NumericBackend::kExact);
    EXPECT_EQ(r->probability, cold->probability);
    EXPECT_EQ(std::bit_cast<uint64_t>(r->probability_double),
              std::bit_cast<uint64_t>(cold->probability_double));
  } else {
    // A point enclosure (possible when the union is dyadic-exact through
    // the compensated kernels) legitimately meets any positive target.
    ASSERT_TRUE(r->bound.certified);
    EXPECT_LE(r->bound.hi - r->bound.lo, 1e-300);
  }
}

}  // namespace
}  // namespace phom
