#include "src/reductions/pp2dnf_reduction.h"

#include <gtest/gtest.h>

#include "src/core/fallback.h"
#include "src/graph/classify.h"
#include "src/reductions/edge_cover_reduction.h"
#include "tests/test_util.h"

namespace phom {
namespace {

/// Figure 7/8's formula: X1 Y2 v X1 Y1 v X2 Y2 (0-based pairs).
Pp2Dnf PaperExample() { return test_util::MakePaperPp2Dnf(); }

TEST(Pp2DnfBrute, PaperExampleCount) {
  // ϕ = X1Y2 v X1Y1 v X2Y2 over 4 variables: count satisfying assignments.
  // By hand: X1=1: any of (Y1,Y2) != (0,0) works with any X2 -> 3*2 = 6;
  // X1=0: need X2=1 and Y2=1 -> Y1 free -> 2. Total 8.
  EXPECT_EQ(CountSatisfyingAssignments(PaperExample()), BigInt(8));
}

TEST(Pp2DnfBrute, EdgeCases) {
  Pp2Dnf f;
  f.num_x = 2;
  f.num_y = 2;
  EXPECT_EQ(CountSatisfyingAssignments(f), BigInt(0));  // no clauses
  f.clauses = {{0, 0}};
  EXPECT_EQ(CountSatisfyingAssignments(f), BigInt(4));  // X1=Y1=1, others free
}

TEST(Pp2DnfReduction, LabeledShapesMatchProp41) {
  Pp2DnfReduction red = BuildPp2DnfReductionLabeled(PaperExample());
  EXPECT_TRUE(IsOneWayPath(red.query));
  EXPECT_TRUE(IsPolytree(red.instance.graph()));
  EXPECT_FALSE(IsDownwardTree(red.instance.graph()));
  EXPECT_FALSE(IsTwoWayPath(red.instance.graph()));
  // Query is T S^{m+3} T with m = 3.
  std::vector<LabelId> labels = OneWayPathLabels(red.query);
  ASSERT_EQ(labels.size(), 8u);
  EXPECT_EQ(labels.front(), kPpLabelT);
  EXPECT_EQ(labels.back(), kPpLabelT);
  for (size_t i = 1; i + 1 < labels.size(); ++i) {
    EXPECT_EQ(labels[i], kPpLabelS);
  }
  EXPECT_EQ(red.num_probabilistic_edges, 4u);
  EXPECT_EQ(red.instance.NumUncertainEdges(), 4u);
}

TEST(Pp2DnfReduction, LabeledRecoversExactCount) {
  Rng rng(81);
  for (int trial = 0; trial < 10; ++trial) {
    Pp2Dnf f = RandomPp2Dnf(&rng, rng.UniformInt(1, 3), rng.UniformInt(1, 3),
                            rng.UniformInt(1, 4));
    Pp2DnfReduction red = BuildPp2DnfReductionLabeled(f);
    Result<Rational> prob =
        SolveByWorldEnumeration(red.query, red.instance, {});
    ASSERT_TRUE(prob.ok()) << prob.status().ToString();
    EXPECT_EQ(RecoverCount(*prob, red.num_probabilistic_edges),
              CountSatisfyingAssignments(f))
        << "trial " << trial;
  }
}

TEST(Pp2DnfReduction, UnlabeledShapesMatchProp56) {
  Pp2DnfReduction red = BuildPp2DnfReductionUnlabeled(PaperExample());
  EXPECT_TRUE(IsTwoWayPath(red.query));
  EXPECT_FALSE(IsOneWayPath(red.query));
  EXPECT_TRUE(red.query.UsesSingleLabel());
  EXPECT_TRUE(IsPolytree(red.instance.graph()));
  EXPECT_TRUE(red.instance.graph().UsesSingleLabel());
  // Query is >>> (>><)^{m+3} >>> with m = 3: 3 + 18 + 3 = 24 edges.
  EXPECT_EQ(red.query.num_edges(), 24u);
}

TEST(Pp2DnfReduction, UnlabeledRecoversExactCount) {
  Rng rng(82);
  for (int trial = 0; trial < 5; ++trial) {
    Pp2Dnf f = RandomPp2Dnf(&rng, rng.UniformInt(1, 2), rng.UniformInt(1, 2),
                            rng.UniformInt(1, 3));
    Pp2DnfReduction red = BuildPp2DnfReductionUnlabeled(f);
    Result<Rational> prob =
        SolveByWorldEnumeration(red.query, red.instance, {});
    ASSERT_TRUE(prob.ok()) << prob.status().ToString();
    EXPECT_EQ(RecoverCount(*prob, red.num_probabilistic_edges),
              CountSatisfyingAssignments(f))
        << "trial " << trial;
  }
}

TEST(Pp2DnfReduction, PaperExampleProbability) {
  // 8 satisfying assignments over 2^4 valuations: Pr = 1/2.
  Pp2DnfReduction red = BuildPp2DnfReductionLabeled(PaperExample());
  Rational prob = *SolveByWorldEnumeration(red.query, red.instance, {});
  EXPECT_EQ(prob, Rational::Half());
}

}  // namespace
}  // namespace phom
