#include "src/graph/classify.h"

#include <gtest/gtest.h>

#include "src/graph/builders.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

TEST(Classify, SingleVertexIsInEveryClass) {
  DiGraph g(1);
  EXPECT_TRUE(IsOneWayPath(g));
  EXPECT_TRUE(IsTwoWayPath(g));
  EXPECT_TRUE(IsDownwardTree(g));
  EXPECT_TRUE(IsPolytree(g));
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(Classify(g).finest, GraphClass::kOneWayPath);
}

TEST(Classify, OneWayPath) {
  DiGraph g = MakeOneWayPath(3);
  EXPECT_TRUE(IsOneWayPath(g));
  EXPECT_TRUE(IsTwoWayPath(g));
  EXPECT_TRUE(IsDownwardTree(g));
  EXPECT_TRUE(IsPolytree(g));
  EXPECT_EQ(Classify(g).finest, GraphClass::kOneWayPath);
}

TEST(Classify, TwoWayPathProper) {
  DiGraph g = MakeArrowPath("><>");
  EXPECT_FALSE(IsOneWayPath(g));
  EXPECT_TRUE(IsTwoWayPath(g));
  EXPECT_FALSE(IsDownwardTree(g));  // a <- b pattern gives in-degree 2 or root x2
  EXPECT_TRUE(IsPolytree(g));
  EXPECT_EQ(Classify(g).finest, GraphClass::kTwoWayPath);
}

TEST(Classify, DownwardTreeProper) {
  // Root with three children: not a path.
  DiGraph g = MakeOutStar(3);
  EXPECT_FALSE(IsOneWayPath(g));
  EXPECT_FALSE(IsTwoWayPath(g));
  EXPECT_TRUE(IsDownwardTree(g));
  EXPECT_TRUE(IsPolytree(g));
  EXPECT_EQ(Classify(g).finest, GraphClass::kDownwardTree);
  EXPECT_EQ(DownwardTreeRoot(g), 0u);
}

TEST(Classify, TwoLeafStarIsBoth2wpAndDwt) {
  // 1 <- 0 -> 2 is simultaneously a 2WP and a DWT (but not a 1WP): the
  // overlap of the two classes is the out-directed paths, not just 1WPs.
  DiGraph g = MakeOutStar(2);
  EXPECT_FALSE(IsOneWayPath(g));
  EXPECT_TRUE(IsTwoWayPath(g));
  EXPECT_TRUE(IsDownwardTree(g));
}

TEST(Classify, PolytreeProper) {
  // Branching (vertex 1 has three neighbors) + two-wayness (in-degree 2).
  DiGraph g(4);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 2, 1, 0);
  AddEdgeOrDie(&g, 1, 3, 0);
  EXPECT_FALSE(IsTwoWayPath(g));
  EXPECT_FALSE(IsDownwardTree(g));
  EXPECT_TRUE(IsPolytree(g));
  EXPECT_EQ(Classify(g).finest, GraphClass::kPolytree);
}

TEST(Classify, CycleIsOnlyConnected) {
  DiGraph g(3);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 1, 2, 0);
  AddEdgeOrDie(&g, 2, 0, 0);
  EXPECT_FALSE(IsPolytree(g));
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(Classify(g).finest, GraphClass::kConnected);
}

TEST(Classify, AntiParallelPairRejectedFromTreeClasses) {
  DiGraph g(2);
  AddEdgeOrDie(&g, 0, 1, 0);
  AddEdgeOrDie(&g, 1, 0, 0);
  EXPECT_FALSE(IsOneWayPath(g));
  EXPECT_FALSE(IsTwoWayPath(g));
  EXPECT_FALSE(IsDownwardTree(g));
  EXPECT_FALSE(IsPolytree(g));
  EXPECT_TRUE(IsConnected(g));
}

TEST(Classify, SelfLoop) {
  DiGraph g(1);
  AddEdgeOrDie(&g, 0, 0, 0);
  EXPECT_FALSE(IsOneWayPath(g));
  EXPECT_FALSE(IsTwoWayPath(g));
  EXPECT_FALSE(IsDownwardTree(g));
  EXPECT_FALSE(IsPolytree(g));
  EXPECT_EQ(Classify(g).finest, GraphClass::kConnected);
}

TEST(Classify, DisconnectedUnions) {
  DiGraph u = DisjointUnion({MakeOneWayPath(2), MakeArrowPath("><")});
  Classification c = Classify(u);
  EXPECT_FALSE(c.connected);
  EXPECT_EQ(c.num_components, 2u);
  EXPECT_FALSE(c.all_1wp);
  EXPECT_TRUE(c.all_2wp);
  EXPECT_FALSE(c.all_dwt);
  EXPECT_TRUE(c.all_pt);
  EXPECT_EQ(c.finest, GraphClass::kGeneral);
}

TEST(Classify, MixedUnion) {
  DiGraph u = DisjointUnion({MakeOutStar(3), MakeArrowPath("><")});
  Classification c = Classify(u);
  EXPECT_FALSE(c.all_2wp);  // the star is not a 2WP
  EXPECT_FALSE(c.all_dwt);  // >< is not a DWT
  EXPECT_TRUE(c.all_pt);
}

TEST(Classify, InclusionDiagramOnRandomGraphs) {
  // Figure 2: 1WP ⊆ 2WP, 1WP ⊆ DWT, 2WP ⊆ PT, DWT ⊆ PT, PT ⊆ Connected.
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    DiGraph g = RandomPolytree(&rng, 1 + rng.UniformInt(0, 9), 2);
    if (IsOneWayPath(g)) {
      EXPECT_TRUE(IsTwoWayPath(g));
      EXPECT_TRUE(IsDownwardTree(g));
    }
    if (IsTwoWayPath(g)) {
      EXPECT_TRUE(IsPolytree(g));
    }
    if (IsDownwardTree(g)) {
      EXPECT_TRUE(IsPolytree(g));
    }
    if (IsPolytree(g)) {
      EXPECT_TRUE(IsConnected(g));
    }
  }
}

TEST(Classify, OverlapOf2wpAndDwtIsOutDirectedPaths) {
  // A graph in 2WP ∩ DWT is a path whose edges all point away from a single
  // source vertex (so every vertex has in-degree <= 1 and out-degree <= 2).
  Rng rng(100);
  for (int trial = 0; trial < 300; ++trial) {
    DiGraph g = RandomPolytree(&rng, 1 + rng.UniformInt(0, 9), 1);
    if (IsTwoWayPath(g) && IsDownwardTree(g)) {
      size_t sources = 0;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_LE(g.InDegree(v), 1u);
        EXPECT_LE(g.OutDegree(v), 2u);
        if (g.InDegree(v) == 0) ++sources;
      }
      EXPECT_EQ(sources, 1u) << trial;
    }
  }
}

TEST(TwoWayPathOrder, WalksThePath) {
  DiGraph g = MakeArrowPath("><>");
  std::vector<VertexId> order = TwoWayPathOrder(g);
  ASSERT_EQ(order.size(), 4u);
  // Consecutive vertices in the order are adjacent in the graph.
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    bool adj = g.FindEdge(order[i], order[i + 1]).has_value() ||
               g.FindEdge(order[i + 1], order[i]).has_value();
    EXPECT_TRUE(adj);
  }
}

TEST(OneWayPathLabels, ReadsLabelsInOrder) {
  DiGraph g = MakeLabeledPath({5, 3, 5});
  EXPECT_EQ(OneWayPathLabels(g), (std::vector<LabelId>{5, 3, 5}));
}

TEST(ConnectedComponents, SortedBySmallestVertex) {
  DiGraph g(5);
  AddEdgeOrDie(&g, 4, 3, 0);
  AddEdgeOrDie(&g, 0, 1, 0);
  auto comps = ConnectedComponents(g);
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<VertexId>{2}));
  EXPECT_EQ(comps[2], (std::vector<VertexId>{3, 4}));
}

}  // namespace
}  // namespace phom
