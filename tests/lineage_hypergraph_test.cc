#include "src/lineage/hypergraph.h"

#include <gtest/gtest.h>

namespace phom {
namespace {

TEST(Hypergraph, EmptyIsBetaAcyclic) {
  Hypergraph h(5);
  EXPECT_TRUE(h.IsBetaAcyclic());
  auto order = h.BetaEliminationOrder();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 5u);  // all vertices, trivially
}

TEST(Hypergraph, SingleEdgeIsBetaAcyclic) {
  Hypergraph h(4);
  h.AddHyperedge({0, 1, 2});
  EXPECT_TRUE(h.IsBetaAcyclic());
}

TEST(Hypergraph, ChainOfInclusionsIsBetaLeaf) {
  Hypergraph h(4);
  h.AddHyperedge({0});
  h.AddHyperedge({0, 1});
  h.AddHyperedge({0, 1, 2});
  EXPECT_TRUE(h.IsBetaLeaf(0));
  EXPECT_TRUE(h.IsBetaAcyclic());
}

TEST(Hypergraph, IncomparableEdgesAreNotABetaLeaf) {
  Hypergraph h(3);
  h.AddHyperedge({0, 1});
  h.AddHyperedge({0, 2});
  EXPECT_FALSE(h.IsBetaLeaf(0));
  EXPECT_TRUE(h.IsBetaLeaf(1));
  // Still β-acyclic: eliminate 1 and 2 first.
  EXPECT_TRUE(h.IsBetaAcyclic());
}

TEST(Hypergraph, TriangleCycleIsNotBetaAcyclic) {
  // The classic β-cycle: {a,b}, {b,c}, {c,a}.
  Hypergraph h(3);
  h.AddHyperedge({0, 1});
  h.AddHyperedge({1, 2});
  h.AddHyperedge({2, 0});
  EXPECT_FALSE(h.IsBetaAcyclic());
}

TEST(Hypergraph, AlphaAcyclicButBetaCyclic) {
  // {a,b,c} with {a,b}, {b,c}, {a,c}: α-acyclic (big edge covers) but not
  // β-acyclic — the distinguishing example between the two notions.
  Hypergraph h(3);
  h.AddHyperedge({0, 1, 2});
  h.AddHyperedge({0, 1});
  h.AddHyperedge({1, 2});
  h.AddHyperedge({0, 2});
  EXPECT_FALSE(h.IsBetaAcyclic());
}

TEST(Hypergraph, IntervalHypergraphIsBetaAcyclic) {
  // Intervals over a line (the 2WP lineage shape) are β-acyclic.
  Hypergraph h(6);
  h.AddHyperedge({0, 1, 2});
  h.AddHyperedge({1, 2, 3, 4});
  h.AddHyperedge({3, 4, 5});
  h.AddHyperedge({2, 3});
  EXPECT_TRUE(h.IsBetaAcyclic());
}

TEST(Hypergraph, RootwardPathHypergraphIsBetaAcyclic) {
  // DWT lineage shape: paths of length 2 ending at each node of a small
  // tree with root 0, children 1 and 2, grandchildren 3 (under 1) and 4
  // (under 2). Edges (variables): e0=(0,1) e1=(0,2) e2=(1,3) e3=(2,4).
  // Clauses: {e0,e2} (path to 3), {e1,e3} (path to 4).
  Hypergraph h(4);
  h.AddHyperedge({0, 2});
  h.AddHyperedge({1, 3});
  EXPECT_TRUE(h.IsBetaAcyclic());
}

TEST(Hypergraph, EliminationOrderIsValid) {
  Hypergraph h(5);
  h.AddHyperedge({0, 1, 2});
  h.AddHyperedge({1, 2, 3});
  h.AddHyperedge({2, 3, 4});
  auto order = h.BetaEliminationOrder();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 5u);
  // Order covers every vertex exactly once.
  std::vector<bool> seen(5, false);
  for (uint32_t v : *order) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Hypergraph, DuplicateEdgesAreHarmless) {
  Hypergraph h(3);
  h.AddHyperedge({0, 1});
  h.AddHyperedge({0, 1});
  EXPECT_TRUE(h.IsBetaLeaf(0));
  EXPECT_TRUE(h.IsBetaAcyclic());
}

TEST(Hypergraph, RejectsEmptyHyperedge) {
  Hypergraph h(2);
  EXPECT_THROW(h.AddHyperedge({}), std::logic_error);
}

}  // namespace
}  // namespace phom
