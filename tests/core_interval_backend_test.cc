#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/eval_session.h"
#include "src/core/solver.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"
#include "src/serve/executor.h"
#include "src/util/interval_double.h"
#include "src/util/numeric.h"
#include "tests/test_util.h"

/// Tier-1 coverage of the self-verifying interval backend: every
/// kIntervalDouble answer must be a CERTIFIED enclosure of the exact
/// Rational answer — lo <= exact <= hi proved by exact arithmetic, not by
/// comparing two floating-point results — across the full cross-check
/// corpus (all four dichotomy cells), with widths no worse than 1e-6 on the
/// tractable cells. Also: the interval NumericOps primitives, the
/// ToString/ParseNumericBackend string round trip, and the serve-layer
/// guarantee that the parallel interval combine is bit-identical to serial.

namespace phom {
namespace {

using test_util::CellClass;
using test_util::kCrosscheckSeedBase;
using test_util::MakeCrosscheckCase;
using test_util::MixedServeInstance;
using test_util::MixedServeQueries;

/// Certified enclosure check: lo <= exact <= hi, decided in EXACT rational
/// arithmetic (every finite double is a dyadic rational, so FromDouble is
/// lossless — no rounding can hide a violation).
void ExpectEncloses(const ProbabilityBound& bound, const Rational& exact,
                    const std::string& context) {
  EXPECT_TRUE(bound.certified) << context;
  EXPECT_LE(bound.lo, bound.hi) << context;
  EXPECT_TRUE(Rational::FromDouble(bound.lo) <= exact)
      << context << ": lo=" << bound.lo << " above exact="
      << exact.ToDouble();
  EXPECT_TRUE(Rational::FromDouble(bound.hi) >= exact)
      << context << ": hi=" << bound.hi << " below exact="
      << exact.ToDouble();
}

// ---------------------------------------------------------------------------
// NumericOps<IntervalDouble> primitives
// ---------------------------------------------------------------------------

TEST(NumericIntervalOps, FromRationalIsACertifiedEnclosure) {
  // 1/3 and friends are not representable: the enclosure must be a proper
  // interval that still contains the exact value.
  for (const Rational& p :
       {Rational(1, 3), Rational(2, 7), Rational(1, 10), Rational(287, 500),
        Rational::Zero(), Rational::One(), Rational(1, 2)}) {
    const IntervalDouble iv = NumericOps<IntervalDouble>::From(p);
    EXPECT_TRUE(Rational::FromDouble(iv.lo) <= p) << p.ToDouble();
    EXPECT_TRUE(Rational::FromDouble(iv.hi) >= p) << p.ToDouble();
    EXPECT_GE(iv.lo, 0.0);
    EXPECT_LE(iv.hi, 1.0);
    EXPECT_LE(iv.width(), 1e-15);
  }
  // Exactly-representable probabilities convert to POINT intervals.
  EXPECT_EQ(NumericOps<IntervalDouble>::From(Rational(1, 2)),
            IntervalDouble(0.5));
  EXPECT_EQ(NumericOps<IntervalDouble>::From(Rational::Zero()),
            IntervalDouble(0.0));
  EXPECT_EQ(NumericOps<IntervalDouble>::From(Rational::One()),
            IntervalDouble(1.0));
}

TEST(NumericIntervalOps, ArithmeticEnclosesExactArithmetic) {
  const Rational a(1, 3), b(2, 7);
  const IntervalDouble ia = NumericOps<IntervalDouble>::From(a);
  const IntervalDouble ib = NumericOps<IntervalDouble>::From(b);

  const IntervalDouble sum = ia + ib;
  EXPECT_TRUE(Rational::FromDouble(sum.lo) <= a + b);
  EXPECT_TRUE(Rational::FromDouble(sum.hi) >= a + b);

  const IntervalDouble prod = ia * ib;
  EXPECT_TRUE(Rational::FromDouble(prod.lo) <= a * b);
  EXPECT_TRUE(Rational::FromDouble(prod.hi) >= a * b);

  const IntervalDouble comp = NumericOps<IntervalDouble>::Complement(ia);
  EXPECT_TRUE(Rational::FromDouble(comp.lo) <= Rational::One() - a);
  EXPECT_TRUE(Rational::FromDouble(comp.hi) >= Rational::One() - a);

  // Results never escape [0, 1] (the event-probability clamp).
  EXPECT_GE(sum.lo, 0.0);
  EXPECT_LE(sum.hi, 1.0);
}

TEST(NumericIntervalOps, ZeroAndOneArePointsAndPredicatesAreConservative) {
  using Ops = NumericOps<IntervalDouble>;
  EXPECT_TRUE(Ops::IsZero(Ops::Zero()));
  EXPECT_TRUE(Ops::IsOne(Ops::One()));
  // A non-point interval straddling the endpoint is NOT claimed zero/one.
  EXPECT_FALSE(Ops::IsZero(IntervalDouble(0.0, 1e-300)));
  EXPECT_FALSE(Ops::IsOne(IntervalDouble(1.0 - 1e-15, 1.0)));
}

TEST(NumericIntervalStrings, ToStringParseNumericBackendRoundTrip) {
  for (NumericBackend b :
       {NumericBackend::kExact, NumericBackend::kDouble,
        NumericBackend::kIntervalDouble}) {
    Result<NumericBackend> parsed = ParseNumericBackend(ToString(b));
    ASSERT_TRUE(parsed.ok()) << ToString(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_EQ(std::string(ToString(NumericBackend::kIntervalDouble)),
            "interval-double");
  EXPECT_FALSE(ParseNumericBackend("interval").ok());
  EXPECT_FALSE(ParseNumericBackend("").ok());
  EXPECT_FALSE(ParseNumericBackend("rational").ok());
}

// ---------------------------------------------------------------------------
// End-to-end enclosure across the cross-check corpus
// ---------------------------------------------------------------------------

class NumericIntervalTest : public ::testing::TestWithParam<CellClass> {};

TEST_P(NumericIntervalTest, EnclosesExactAcrossCorpus) {
  CellClass cell = GetParam();
  // Offset 3000: an independent stream from the other corpus suites.
  Rng rng(kCrosscheckSeedBase + 3000 + static_cast<uint64_t>(cell));
  for (int trial = 0; trial < 20; ++trial) {
    test_util::CrosscheckCase c = MakeCrosscheckCase(cell, &rng);
    const std::string context = std::string(test_util::ToString(cell)) +
                                " trial " + std::to_string(trial);

    Result<SolveResult> exact = Solver().Solve(c.query, c.instance);
    ASSERT_TRUE(exact.ok()) << context << ": " << exact.status().ToString();

    SolveOptions interval_options;
    interval_options.numeric = NumericBackend::kIntervalDouble;
    Result<SolveResult> interval =
        Solver(interval_options).Solve(c.query, c.instance);
    ASSERT_TRUE(interval.ok()) << context;
    EXPECT_EQ(interval->numeric, NumericBackend::kIntervalDouble) << context;
    // Backend choice must not reach engine selection.
    EXPECT_EQ(interval->stats.engine, exact->stats.engine) << context;

    ExpectEncloses(interval->bound, exact->probability, context);
    // Acceptance bar: certified width within 1e-6 across the corpus (the
    // instances are small; directed rounding loses < 1 ulp per operation).
    EXPECT_LE(interval->bound.hi - interval->bound.lo, 1e-6) << context;
    // The reported point estimate is the enclosure midpoint.
    EXPECT_GE(interval->probability_double, interval->bound.lo) << context;
    EXPECT_LE(interval->probability_double, interval->bound.hi) << context;

    // Provenance: a point enclosure is exact knowledge, a proper interval
    // is a certified enclosure; nothing weaker may be claimed.
    const Guarantee g = GuaranteeOf(*interval);
    if (interval->bound.lo == interval->bound.hi) {
      EXPECT_EQ(g, Guarantee::kExact) << context;
    } else {
      EXPECT_EQ(g, Guarantee::kIntervalEnclosure) << context;
    }

    // The exact backend's own outward-rounded point bound also encloses.
    ExpectEncloses(exact->bound, exact->probability, context + " (exact)");
    EXPECT_EQ(GuaranteeOf(*exact), Guarantee::kExact) << context;
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, NumericIntervalTest,
                         ::testing::ValuesIn(test_util::AllCellClasses()),
                         [](const ::testing::TestParamInfo<CellClass>& info) {
                           switch (info.param) {
                             case CellClass::k2wp: return "TwoWayPath";
                             case CellClass::kDwt: return "DownwardTree";
                             case CellClass::kPolytree: return "Polytree";
                             case CellClass::kHardCell: return "HardCell";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Serve layer: the parallel interval combine replays the serial one
// ---------------------------------------------------------------------------

TEST(NumericIntervalServe, ParallelBoundsBitIdenticalToSerial) {
  Rng rng(kCrosscheckSeedBase + 3100);
  ProbGraph instance = MixedServeInstance(&rng);
  std::vector<DiGraph> batch = MixedServeQueries(&rng);

  SolveOptions options;
  options.numeric = NumericBackend::kIntervalDouble;
  EvalSession serial_session(instance, options);
  std::vector<Result<SolveResult>> serial = serial_session.SolveBatch(batch);

  for (size_t threads : {1u, 2u, 8u}) {
    EvalSession session(instance, options);
    serve::ExecutorOptions exec_options;
    exec_options.threads = threads;
    serve::BatchExecutor executor(exec_options);
    std::vector<Result<SolveResult>> parallel =
        executor.SolveBatch(session, batch);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      const std::string context =
          "threads=" + std::to_string(threads) + " query " + std::to_string(i);
      ASSERT_EQ(parallel[i].ok(), serial[i].ok()) << context;
      if (!serial[i].ok()) continue;
      // Bit-identical enclosures: the parallel combine replays the serial
      // Lemma 3.7 complement-product on per-component bounds.
      EXPECT_EQ(parallel[i]->bound.lo, serial[i]->bound.lo) << context;
      EXPECT_EQ(parallel[i]->bound.hi, serial[i]->bound.hi) << context;
      EXPECT_EQ(parallel[i]->bound.certified, serial[i]->bound.certified)
          << context;
      EXPECT_EQ(parallel[i]->probability_double, serial[i]->probability_double)
          << context;
      EXPECT_TRUE(parallel[i]->bound.certified) << context;
    }
  }
}

TEST(NumericIntervalServe, GuaranteeSurfacesInRequestStatsAndCounters) {
  Rng rng(kCrosscheckSeedBase + 3200);
  ProbGraph instance = MixedServeInstance(&rng);
  EvalSession session(instance);

  serve::ExecutorOptions exec_options;
  exec_options.threads = 2;
  serve::BatchExecutor executor(exec_options);

  // One interval-backend request, one exact request.
  serve::SolveRequest interval_req(MakeLabeledPath({0, 1, 0}));
  interval_req.WithNumeric(NumericBackend::kIntervalDouble);
  serve::SolveTicket t1 = executor.Submit(session, std::move(interval_req));
  serve::SolveRequest exact_req(MakeLabeledPath({0, 1, 0}));
  serve::SolveTicket t2 = executor.Submit(session, std::move(exact_req));

  Result<SolveResult> r1 = t1.Take();
  Result<SolveResult> r2 = t2.Take();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(t1.stats().guarantee, GuaranteeOf(*r1));
  EXPECT_EQ(t2.stats().guarantee, Guarantee::kExact);

  const serve::ExecutorStats stats = executor.stats();
  const uint64_t total = stats.results_exact + stats.results_interval +
                         stats.results_empirical + stats.results_absolute95 +
                         stats.results_relative95;
  EXPECT_EQ(total, 2u);
  EXPECT_GE(stats.results_exact, 1u);
}

}  // namespace
}  // namespace phom
