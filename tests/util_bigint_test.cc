#include "src/util/bigint.h"

#include <gtest/gtest.h>

#include <random>

namespace phom {
namespace {

TEST(BigInt, ZeroBasics) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ(zero + zero, zero);
  EXPECT_EQ(zero * BigInt(12345), zero);
}

TEST(BigInt, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-1000000007}, INT64_MAX, INT64_MIN}) {
    BigInt b(v);
    ASSERT_TRUE(b.ToInt64().has_value()) << v;
    EXPECT_EQ(*b.ToInt64(), v);
    EXPECT_EQ(b.ToString(), std::to_string(v));
  }
}

TEST(BigInt, Int64Overflow) {
  BigInt big = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(big.ToInt64().has_value());
  BigInt small = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_FALSE(small.ToInt64().has_value());
  EXPECT_TRUE((BigInt(INT64_MIN)).ToInt64().has_value());
}

TEST(BigInt, FromStringValid) {
  EXPECT_EQ(*BigInt::FromString("0")->ToInt64(), 0);
  EXPECT_EQ(*BigInt::FromString("-0")->ToInt64(), 0);
  EXPECT_EQ(*BigInt::FromString("12345678901234567")->ToInt64(),
            12345678901234567LL);
  EXPECT_EQ(*BigInt::FromString("-987")->ToInt64(), -987);
  EXPECT_EQ(BigInt::FromString("123456789012345678901234567890")->ToString(),
            "123456789012345678901234567890");
}

TEST(BigInt, FromStringInvalid) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a3").ok());
  EXPECT_FALSE(BigInt::FromString("+-3").ok());
}

TEST(BigInt, Pow2) {
  EXPECT_EQ(BigInt::Pow2(0), BigInt(1));
  EXPECT_EQ(BigInt::Pow2(10), BigInt(1024));
  EXPECT_EQ(BigInt::Pow2(100).ToString(), "1267650600228229401496703205376");
  EXPECT_EQ(BigInt::Pow2(100).BitLength(), 101u);
  EXPECT_TRUE(BigInt::Pow2(100).IsPowerOfTwo());
  EXPECT_EQ(BigInt::Pow2(100).TrailingZeroBits(), 100u);
}

TEST(BigInt, Shifts) {
  BigInt v(0x12345678);
  EXPECT_EQ(v.ShiftLeft(64).ShiftRight(64), v);
  EXPECT_EQ(v.ShiftLeft(33).ShiftRight(33), v);
  EXPECT_EQ(BigInt(7).ShiftRight(3), BigInt(0));
  EXPECT_EQ(BigInt(7).ShiftRight(1), BigInt(3));
}

TEST(BigInt, DivModMatchesInt64) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    int64_t a = static_cast<int64_t>(rng()) % 1000000000;
    int64_t b = static_cast<int64_t>(rng()) % 10000;
    if (b == 0) b = 3;
    BigInt q, r;
    BigInt(a).DivMod(BigInt(b), &q, &r);
    EXPECT_EQ(*q.ToInt64(), a / b) << a << "/" << b;
    EXPECT_EQ(*r.ToInt64(), a % b) << a << "%" << b;
  }
}

TEST(BigInt, ArithmeticMatchesInt64) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    int64_t a = static_cast<int64_t>(rng() % 2000001) - 1000000;
    int64_t b = static_cast<int64_t>(rng() % 2000001) - 1000000;
    EXPECT_EQ(*(BigInt(a) + BigInt(b)).ToInt64(), a + b);
    EXPECT_EQ(*(BigInt(a) - BigInt(b)).ToInt64(), a - b);
    EXPECT_EQ(*(BigInt(a) * BigInt(b)).ToInt64(), a * b);
    EXPECT_EQ(BigInt(a).Compare(BigInt(b)), a < b ? -1 : (a == b ? 0 : 1));
  }
}

TEST(BigInt, GcdMatchesEuclid) {
  std::mt19937_64 rng(13);
  auto gcd64 = [](int64_t a, int64_t b) {
    while (b) {
      int64_t t = a % b;
      a = b;
      b = t;
    }
    return a < 0 ? -a : a;
  };
  for (int trial = 0; trial < 1000; ++trial) {
    int64_t a = static_cast<int64_t>(rng() % 1000000);
    int64_t b = static_cast<int64_t>(rng() % 1000000);
    EXPECT_EQ(*BigInt::Gcd(BigInt(a), BigInt(b)).ToInt64(), gcd64(a, b));
  }
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
}

TEST(BigInt, LargeMultiplicationIdentity) {
  // (2^200 - 1) * (2^200 + 1) == 2^400 - 1.
  BigInt a = BigInt::Pow2(200) - BigInt(1);
  BigInt b = BigInt::Pow2(200) + BigInt(1);
  EXPECT_EQ(a * b, BigInt::Pow2(400) - BigInt(1));
}

TEST(BigInt, LargeDivisionRoundTrip) {
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    // Build random big numbers from strings of digits.
    std::string sa, sb;
    for (int i = 0; i < 40; ++i) sa += static_cast<char>('1' + rng() % 9);
    for (int i = 0; i < 17; ++i) sb += static_cast<char>('1' + rng() % 9);
    BigInt a = *BigInt::FromString(sa);
    BigInt b = *BigInt::FromString(sb);
    BigInt q, r;
    a.DivMod(b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r >= BigInt(0) && r < b);
  }
}

TEST(BigInt, NegativeDivisionTruncatesTowardZero) {
  EXPECT_EQ(*(BigInt(-7) / BigInt(2)).ToInt64(), -3);
  EXPECT_EQ(*(BigInt(-7) % BigInt(2)).ToInt64(), -1);
  EXPECT_EQ(*(BigInt(7) / BigInt(-2)).ToInt64(), -3);
  EXPECT_EQ(*(BigInt(7) % BigInt(-2)).ToInt64(), 1);
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1000000).ToDouble(), 1e6);
  EXPECT_DOUBLE_EQ(BigInt(-5).ToDouble(), -5.0);
  EXPECT_NEAR(BigInt::Pow2(64).ToDouble(), 1.8446744073709552e19, 1e5);
}

TEST(BigInt, HashDistinguishesSign) {
  EXPECT_NE(BigInt(5).Hash(), BigInt(-5).Hash());
  EXPECT_EQ(BigInt(5).Hash(), BigInt(5).Hash());
}

}  // namespace
}  // namespace phom
