#include <gtest/gtest.h>

#include "src/core/algo_dwt.h"
#include "src/core/algo_polytree.h"
#include "src/core/fallback.h"
#include "src/graph/builders.h"
#include "src/graph/generators.h"

/// Adversarial shapes for the Prop. 5.4 pipeline: deep chains (recursion /
/// encoding depth), wide stars (binarization spine length), alternating
/// zig-zags (no long directed runs), and caterpillars. Parameterized over
/// the query length.

namespace phom {
namespace {

class AdversarialShapeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AdversarialShapeTest, DeepChain) {
  uint32_t m = GetParam();
  // A 600-edge directed chain, every edge probability 1/2: Pr of a run of
  // length m follows the run-length DP; cross-check automaton vs. DWT DP.
  ProbGraph h(601);
  for (int i = 0; i < 600; ++i) {
    AddEdgeOrDie(&h, i, i + 1, 0, Rational::Half());
  }
  PolytreeStats stats;
  Result<Rational> automaton = SolvePathProbabilityOnPolytree(m, h, &stats);
  ASSERT_TRUE(automaton.ok());
  Result<Rational> dp = SolvePathOnDwtForest(
      std::vector<LabelId>(m, 0), h);
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(*automaton, *dp);
  EXPECT_GT(stats.encoded_nodes, 600u);
}

TEST_P(AdversarialShapeTest, WideStar) {
  uint32_t m = GetParam();
  // 400 leaves below one root: the ε-spine is long; only m == 1 can match.
  ProbGraph h = ProbGraph(0);
  VertexId root = h.AddVertex();
  Rational miss = Rational::One();
  for (int i = 0; i < 400; ++i) {
    VertexId leaf = h.AddVertex();
    AddEdgeOrDie(&h, root, leaf, 0, Rational(1, 4));
    miss *= Rational(3, 4);
  }
  Result<Rational> p = SolvePathProbabilityOnPolytree(m, h);
  ASSERT_TRUE(p.ok());
  if (m == 1) {
    EXPECT_EQ(*p, miss.Complement());
  } else {
    EXPECT_EQ(*p, Rational::Zero());
  }
}

TEST_P(AdversarialShapeTest, ZigZag) {
  uint32_t m = GetParam();
  // -> <- -> <- ...: no directed run longer than 1.
  DiGraph shape = MakeArrowPath(RepeatArrows("><", 150));
  Rng rng(71);
  ProbGraph h = AttachRandomProbabilities(&rng, shape, 3);
  Result<Rational> p = SolvePathProbabilityOnPolytree(m, h);
  ASSERT_TRUE(p.ok());
  if (m >= 2) {
    EXPECT_EQ(*p, Rational::Zero());
  } else {
    EXPECT_GT(*p, Rational::Zero());
  }
}

TEST_P(AdversarialShapeTest, CaterpillarMatchesFallbackAtSmallSize) {
  uint32_t m = GetParam();
  // A chain with a leaf at every vertex, small enough for the oracle.
  Rng rng(72);
  ProbGraph h(0);
  VertexId prev = h.AddVertex();
  for (int i = 0; i < 5; ++i) {
    VertexId next = h.AddVertex();
    AddEdgeOrDie(&h, prev, next, 0, rng.NontrivialDyadicProbability(2));
    VertexId leaf = h.AddVertex();
    AddEdgeOrDie(&h, next, leaf, 0, rng.NontrivialDyadicProbability(2));
    prev = next;
  }
  Result<Rational> fast = SolvePathProbabilityOnPolytree(m, h);
  ASSERT_TRUE(fast.ok());
  Rational oracle = *SolveByWorldEnumeration(MakeOneWayPath(m), h);
  EXPECT_EQ(*fast, oracle);
}

INSTANTIATE_TEST_SUITE_P(QueryLengths, AdversarialShapeTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace phom
