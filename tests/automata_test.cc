#include "src/automata/tree_automaton.h"

#include <gtest/gtest.h>

#include "src/automata/binary_encoding.h"
#include "src/automata/provenance.h"
#include "src/circuits/dnnf.h"
#include "src/graph/builders.h"
#include "src/graph/classify.h"
#include "src/graph/generators.h"

namespace phom {
namespace {

/// World of a polytree as a plain DiGraph (kept edges only).
DiGraph WorldOf(const DiGraph& g, const std::vector<bool>& kept) {
  DiGraph world(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (kept[e]) {
      const Edge& edge = g.edge(e);
      AddEdgeOrDie(&world, edge.src, edge.dst, edge.label);
    }
  }
  return world;
}

TEST(Encoding, FullBinaryAndTopological) {
  Rng rng(61);
  for (int trial = 0; trial < 50; ++trial) {
    ProbGraph h = AttachRandomProbabilities(
        &rng, RandomPolytree(&rng, 1 + rng.UniformInt(0, 14), 1), 3);
    Result<EncodedPolytree> enc = EncodePolytree(h);
    ASSERT_TRUE(enc.ok());
    for (size_t i = 0; i < enc->nodes.size(); ++i) {
      const EncodedNode& node = enc->nodes[i];
      EXPECT_EQ(node.left < 0, node.right < 0);
      if (node.left >= 0) {
        EXPECT_LT(node.left, static_cast<int32_t>(i));
        EXPECT_LT(node.right, static_cast<int32_t>(i));
      }
    }
    // Every instance edge appears exactly once as a source edge.
    std::vector<int> seen(h.num_edges(), 0);
    for (const EncodedNode& node : enc->nodes) {
      if (node.source_edge != EncodedNode::kNoSourceEdge) {
        ++seen[node.source_edge];
        EXPECT_NE(node.label, StepLabel::kEps);
      } else {
        EXPECT_EQ(node.label, StepLabel::kEps);
        EXPECT_TRUE(node.prob.is_one());
      }
    }
    for (int s : seen) EXPECT_EQ(s, 1);
  }
}

TEST(Encoding, RequiresPolytree) {
  DiGraph cyclic(3);
  AddEdgeOrDie(&cyclic, 0, 1, 0);
  AddEdgeOrDie(&cyclic, 1, 2, 0);
  AddEdgeOrDie(&cyclic, 2, 0, 0);
  EXPECT_FALSE(EncodePolytree(ProbGraph::Certain(cyclic)).ok());
  DiGraph forest = DisjointUnion({MakeOneWayPath(1), MakeOneWayPath(1)});
  EXPECT_FALSE(EncodePolytree(ProbGraph::Certain(forest)).ok());
}

TEST(LongestRunAutomaton, StateRoundTrip) {
  LongestRunAutomaton a(5);
  for (uint32_t i = 0; i <= 5; ++i) {
    for (uint32_t j = 0; j <= 5; ++j) {
      for (uint32_t k = 0; k <= 5; ++k) {
        uint32_t s = a.Encode(i, j, k);
        uint32_t i2, j2, k2;
        a.Decode(s, &i2, &j2, &k2);
        EXPECT_EQ(i, i2);
        EXPECT_EQ(j, j2);
        EXPECT_EQ(k, k2);
      }
    }
  }
}

TEST(LongestRunAutomaton, AcceptsIffWorldHasPathOfLengthM) {
  // Exhaustive check over all worlds of random small polytrees: the
  // automaton run on the encoded world accepts iff the world contains a
  // directed path with >= m edges.
  Rng rng(62);
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = 1 + rng.UniformInt(1, 7);
    DiGraph g = RandomPolytree(&rng, n, 1);
    ProbGraph h = AttachRandomProbabilities(&rng, g, 2);
    Result<EncodedPolytree> enc = EncodePolytree(h);
    ASSERT_TRUE(enc.ok());
    for (uint32_t m = 1; m <= 4; ++m) {
      LongestRunAutomaton automaton(m);
      for (uint32_t mask = 0; mask < (1u << g.num_edges()); ++mask) {
        std::vector<bool> kept(g.num_edges());
        for (size_t e = 0; e < g.num_edges(); ++e) kept[e] = (mask >> e) & 1;
        uint32_t root_state = RunOnWorld(
            automaton, *enc, enc->WorldToNodePresence(kept));
        bool expected = LongestDirectedPath(WorldOf(g, kept)) >= m;
        EXPECT_EQ(automaton.IsAccepting(root_state), expected)
            << "trial " << trial << " m " << m << " mask " << mask;
      }
    }
  }
}

TEST(Provenance, CircuitIsDnnfAndMatchesSemantics) {
  Rng rng(63);
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 1 + rng.UniformInt(1, 6);
    DiGraph g = RandomPolytree(&rng, n, 1);
    ProbGraph h = AttachRandomProbabilities(&rng, g, 2);
    Result<EncodedPolytree> enc = EncodePolytree(h);
    ASSERT_TRUE(enc.ok());
    uint32_t m = static_cast<uint32_t>(rng.UniformInt(1, 3));
    LongestRunAutomaton automaton(m);
    ProvenanceCircuit prov = BuildProvenanceCircuit(automaton, *enc);
    EXPECT_TRUE(
        ValidateDecomposability(prov.circuit, prov.root_gate).ok());
    if (prov.circuit.num_vars() <= 18) {
      EXPECT_TRUE(
          ValidateDeterminismExhaustive(prov.circuit, prov.root_gate).ok());
    }
    // Circuit value on each possible world == automaton acceptance.
    for (uint32_t mask = 0; mask < (1u << g.num_edges()); ++mask) {
      std::vector<bool> kept(g.num_edges());
      for (size_t e = 0; e < g.num_edges(); ++e) kept[e] = (mask >> e) & 1;
      // Skip impossible worlds (probability-0/1 branches are pruned).
      bool possible = true;
      for (size_t e = 0; e < g.num_edges(); ++e) {
        if (kept[e] && h.prob(e).is_zero()) possible = false;
        if (!kept[e] && h.prob(e).is_one()) possible = false;
      }
      if (!possible) continue;
      std::vector<bool> present = enc->WorldToNodePresence(kept);
      bool circuit_value = prov.circuit.Evaluate(prov.root_gate, present);
      bool automaton_accepts = automaton.IsAccepting(
          RunOnWorld(automaton, *enc, present));
      EXPECT_EQ(circuit_value, automaton_accepts) << trial;
    }
  }
}

TEST(Provenance, ProbabilityMatchesWorldEnumeration) {
  Rng rng(64);
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = 1 + rng.UniformInt(1, 7);
    DiGraph g = RandomPolytree(&rng, n, 1);
    ProbGraph h = AttachRandomProbabilities(&rng, g, 2, 0.3);
    Result<EncodedPolytree> enc = EncodePolytree(h);
    ASSERT_TRUE(enc.ok());
    uint32_t m = static_cast<uint32_t>(rng.UniformInt(1, 4));
    LongestRunAutomaton automaton(m);
    ProvenanceCircuit prov = BuildProvenanceCircuit(automaton, *enc);
    Rational circuit_prob =
        DnnfProbability(prov.circuit, prov.root_gate, prov.var_probs);

    Rational expected = Rational::Zero();
    for (uint32_t mask = 0; mask < (1u << g.num_edges()); ++mask) {
      std::vector<bool> kept(g.num_edges());
      for (size_t e = 0; e < g.num_edges(); ++e) kept[e] = (mask >> e) & 1;
      if (LongestDirectedPath(WorldOf(g, kept)) >= m) {
        expected += h.WorldProbability(kept);
      }
    }
    EXPECT_EQ(circuit_prob, expected) << "trial " << trial << " m " << m;
  }
}

TEST(LongestDirectedPath, Basics) {
  EXPECT_EQ(LongestDirectedPath(MakeOneWayPath(4)), 4u);
  EXPECT_EQ(LongestDirectedPath(DiGraph(3)), 0u);
  EXPECT_EQ(LongestDirectedPath(MakeArrowPath("><")), 1u);
  EXPECT_EQ(LongestDirectedPath(MakeDownwardTree({0, 1, 0})), 2u);
}

}  // namespace
}  // namespace phom
