#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/graph/cq_parser.h"
#include "src/graph/ucq.h"
#include "src/hom/equivalence.h"

/// Tier-1 coverage of the UCQ text front door: `|`-separated parsing with
/// per-disjunct variable scopes, byte-accurate error reporting (offset into
/// the ORIGINAL text plus the offending token — for every disjunct, not
/// just the first), the pointed '|' diagnostic on the single-CQ parser,
/// Format round-trips, and the logical normalization + fingerprinting layer
/// (ucq.h) the lifted compiler builds on.

namespace phom {
namespace {

Ucq MustParse(const std::string& text, Alphabet* alphabet) {
  Result<ParsedUcq> parsed = ParseUcq(text, alphabet);
  PHOM_CHECK_MSG(parsed.ok(), parsed.status().ToString());
  return parsed->ucq;
}

// ---------------------------------------------------------------------------
// Parsing unions
// ---------------------------------------------------------------------------

TEST(UcqParser, TwoDisjunctsWithIndependentVariableScopes) {
  Alphabet alphabet;
  Result<ParsedUcq> u = ParseUcq("R(x,y), S(y,z) | T(x,y)", &alphabet);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  ASSERT_EQ(u->ucq.disjuncts.size(), 2u);
  EXPECT_EQ(u->ucq.disjuncts[0].num_edges(), 2u);
  EXPECT_EQ(u->ucq.disjuncts[1].num_edges(), 1u);
  // Scopes are independent: 'x' names vertex 0 in BOTH disjuncts.
  ASSERT_EQ(u->variables.size(), 2u);
  EXPECT_EQ(u->variables[0], (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(u->variables[1], (std::vector<std::string>{"x", "y"}));
  // One shared alphabet across disjuncts.
  EXPECT_TRUE(alphabet.Find("R").has_value());
  EXPECT_TRUE(alphabet.Find("T").has_value());
  EXPECT_EQ(alphabet.size(), 3u);
}

TEST(UcqParser, TextWithoutBarIsAOneDisjunctUnion) {
  Alphabet alphabet;
  Result<ParsedUcq> u = ParseUcq("R(x,y), S(y,z)", &alphabet);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->ucq.disjuncts.size(), 1u);
  Alphabet alphabet2;
  Result<ParsedQuery> q = ParseConjunctiveQuery("R(x,y), S(y,z)", &alphabet2);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(*AreEquivalent(u->ucq.disjuncts[0], q->graph));
}

TEST(UcqParser, UsedLabelsIsTheSortedUnion) {
  Alphabet alphabet;
  Ucq u = MustParse("S(x,y) | R(x,y), S(y,z) | R(x,y)", &alphabet);
  LabelId r = *alphabet.Find("R");
  LabelId s = *alphabet.Find("S");
  std::vector<LabelId> expected{std::min(r, s), std::max(r, s)};
  EXPECT_EQ(u.UsedLabels(), expected);
}

// ---------------------------------------------------------------------------
// Error reporting: byte offsets + offending tokens
// ---------------------------------------------------------------------------

TEST(UcqParser, MalformedCqReportsByteOffsetAndToken) {
  Alphabet alphabet;
  // The ',' between atoms is missing; the parser must point at byte 7,
  // where the unexpected 'S' begins.
  Result<ParsedQuery> q = ParseConjunctiveQuery("R(x,y) S(y,z)", &alphabet);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().message(),
            "cq parse error at byte 7: expected ',' between atoms, got 'S'");
}

TEST(UcqParser, TruncatedAtomReportsEndOfInput) {
  Alphabet alphabet;
  Result<ParsedQuery> q = ParseConjunctiveQuery("R(x,y), S(y", &alphabet);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().message(),
            "cq parse error at byte 11: binary atom 'S' needs two arguments; "
            "expected ',', got end of input");
}

TEST(UcqParser, UnaryAtomReportsTheClosingParen) {
  Alphabet alphabet;
  Result<ParsedQuery> q = ParseConjunctiveQuery("R(x)", &alphabet);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().message(),
            "cq parse error at byte 3: binary atom 'R' needs two arguments; "
            "expected ',', got ')'");
}

TEST(UcqParser, BarInSingleCqGetsThePointedDiagnostic) {
  Alphabet alphabet;
  Result<ParsedQuery> q = ParseConjunctiveQuery("R(x,y) | S(y,z)", &alphabet);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().message(),
            "cq parse error at byte 7: '|' builds a union of CQs — parse "
            "this text with ParseUcq");
}

TEST(UcqParser, SecondDisjunctErrorsPointIntoTheOriginalText) {
  Alphabet alphabet;
  // The error is inside the SECOND disjunct; byte 12 is the end of the
  // whole input, not an offset into the internal slice (which starts at 8).
  Result<ParsedUcq> u = ParseUcq("R(x,y) | S(y", &alphabet);
  ASSERT_FALSE(u.ok());
  EXPECT_EQ(u.status().message(),
            "cq parse error at byte 12: binary atom 'S' needs two arguments; "
            "expected ',', got end of input");

  Result<ParsedUcq> v = ParseUcq("R(x,y) | S(y,z) T(a,b)", &alphabet);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(),
            "cq parse error at byte 16: expected ',' between atoms, got 'T'");
}

TEST(UcqParser, EmptyDisjunctsAreRejectedWithTheirOffset) {
  Alphabet alphabet;
  Result<ParsedUcq> leading = ParseUcq("| R(x,y)", &alphabet);
  ASSERT_FALSE(leading.ok());
  EXPECT_EQ(leading.status().message(),
            "cq parse error at byte 0: expected a non-empty disjunct, "
            "got end of input");

  Result<ParsedUcq> trailing = ParseUcq("R(x,y) | ", &alphabet);
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().message(),
            "cq parse error at byte 9: expected a non-empty disjunct, "
            "got end of input");

  EXPECT_FALSE(ParseUcq("", &alphabet).ok());
  EXPECT_FALSE(ParseUcq("R(x,y) || S(y,z)", &alphabet).ok());
}

TEST(UcqParser, ConflictingAtomsInADisjunctAreRejected) {
  Alphabet alphabet;
  Result<ParsedUcq> u = ParseUcq("T(a,b) | R(x,y), S(x,y)", &alphabet);
  ASSERT_FALSE(u.ok());
  EXPECT_NE(u.status().message().find("conflicting atoms on (x, y)"),
            std::string::npos)
      << u.status().message();
}

// ---------------------------------------------------------------------------
// Format round-trip
// ---------------------------------------------------------------------------

TEST(UcqParser, RoundTripThroughFormatUcq) {
  Alphabet alphabet;
  Ucq u = MustParse("R(x,y), S(y,z) | T(a,b) | R(p,q), R(q,p)", &alphabet);
  std::string text = FormatUcq(u, alphabet);
  Alphabet alphabet2;
  Ucq u2 = MustParse(text, &alphabet2);
  ASSERT_EQ(u2.disjuncts.size(), u.disjuncts.size()) << text;
  for (size_t i = 0; i < u.disjuncts.size(); ++i) {
    EXPECT_TRUE(*AreEquivalent(u.disjuncts[i], u2.disjuncts[i])) << text;
  }
}

// ---------------------------------------------------------------------------
// Normalization + fingerprints (ucq.h)
// ---------------------------------------------------------------------------

TEST(UcqParser, NormalizeDropsDuplicateDisjuncts) {
  Alphabet alphabet;
  // Same pattern under renamed variables: syntactic duplicates after
  // canonical encoding.
  Ucq u = MustParse("R(x,y) | R(u,v)", &alphabet);
  Ucq n = NormalizeUcq(u);
  EXPECT_EQ(n.disjuncts.size(), 1u);
}

TEST(UcqParser, NormalizeDropsSubsumedDisjuncts) {
  Alphabet alphabet;
  // R(a,b), S(b,c) is subsumed: any world containing an R,S-path contains
  // an R edge, so the single-atom disjunct absorbs it in the union.
  Ucq u = MustParse("R(x,y) | R(a,b), S(b,c)", &alphabet);
  Ucq n = NormalizeUcq(u);
  ASSERT_EQ(n.disjuncts.size(), 1u);
  EXPECT_EQ(n.disjuncts[0].num_edges(), 1u);

  // Neither of these subsumes the other (R→S vs S→R paths): both survive.
  Ucq v = MustParse("R(x,y), S(y,z) | S(a,b), R(b,c)", &alphabet);
  EXPECT_EQ(NormalizeUcq(v).disjuncts.size(), 2u);
}

TEST(UcqParser, NormalizedFingerprintIsOrderInvariant) {
  Alphabet alphabet;
  Ucq a = NormalizeUcq(MustParse("R(x,y), S(y,z) | T(a,b)", &alphabet));
  Ucq b = NormalizeUcq(MustParse("T(p,q) | R(u,v), S(v,w)", &alphabet));
  EXPECT_EQ(UcqFingerprint(a), UcqFingerprint(b));

  Ucq c = NormalizeUcq(MustParse("R(x,y), S(y,z) | T(a,a)", &alphabet));
  EXPECT_NE(UcqFingerprint(a), UcqFingerprint(c));
}

TEST(UcqParser, CanonicalDisjunctKeySeparatesPatterns) {
  Alphabet alphabet;
  Ucq u = MustParse("R(x,y) | S(x,y) | R(x,y), R(y,z)", &alphabet);
  EXPECT_NE(CanonicalDisjunctKey(u.disjuncts[0]),
            CanonicalDisjunctKey(u.disjuncts[1]));
  EXPECT_NE(CanonicalDisjunctKey(u.disjuncts[0]),
            CanonicalDisjunctKey(u.disjuncts[2]));
  // The key is invariant under variable renaming.
  Ucq v = MustParse("R(fresh,names)", &alphabet);
  EXPECT_EQ(CanonicalDisjunctKey(u.disjuncts[0]),
            CanonicalDisjunctKey(v.disjuncts[0]));
}

}  // namespace
}  // namespace phom
