// The other side of the dichotomy: #P-hardness as a feature. Prop. 3.3
// turns counting edge covers of a bipartite graph into a PHom question on a
// one-way path with a disconnected ⊔1WP query. We build the reduction for a
// small bipartite graph, solve it with the exact exponential fallback, and
// recover the exact edge-cover count as Pr · 2^|E|, cross-checked against
// direct enumeration.
//
// Build & run:  ./build/examples/edge_cover_demo

#include <iostream>

#include "src/core/phom.h"
#include "src/reductions/edge_cover_reduction.h"

int main() {
  using namespace phom;

  // A random bipartite graph: 4 workers x 3 tasks, ~60% of pairs compatible.
  Rng rng(99);
  BipartiteGraph bipartite = RandomBipartite(&rng, 4, 3, 0.6);
  std::cout << "Bipartite graph: " << bipartite.left_size << " + "
            << bipartite.right_size << " vertices, "
            << bipartite.edges.size() << " edges\n";

  EdgeCoverReduction reduction = BuildEdgeCoverReductionLabeled(bipartite);
  Alphabet alphabet = EdgeCoverAlphabet();
  std::cout << "Reduction instance: "
            << TableClassLabel(Classify(reduction.instance.graph()))
            << " with " << reduction.instance.num_edges() << " edges; query: "
            << TableClassLabel(Classify(reduction.query)) << " with "
            << Classify(reduction.query).num_components << " components\n";

  Solver solver;
  Result<SolveResult> result = solver.Solve(reduction.query,
                                            reduction.instance);
  PHOM_CHECK_MSG(result.ok(), result.status().ToString());
  std::cout << "Dichotomy verdict: "
            << (result->analysis.tractable ? "PTIME" : "#P-hard cell")
            << "  [" << result->analysis.proposition << "]\n";
  std::cout << "Pr(G => H) = " << result->probability.ToString() << "\n";

  BigInt via_phom =
      RecoverCount(result->probability, reduction.num_probabilistic_edges);
  BigInt direct = CountEdgeCoversBruteForce(bipartite);
  std::cout << "#EdgeCovers via PHom:        " << via_phom.ToString() << "\n";
  std::cout << "#EdgeCovers via enumeration: " << direct.ToString() << "\n";
  PHOM_CHECK(via_phom == direct);
  std::cout << "Counts agree.\n";
  return 0;
}
