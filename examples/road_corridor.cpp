// Connected queries on a two-way path instance (Prop. 4.11): a highway
// corridor of segments, each directed (one-way) and annotated with the
// probability that it is open today. Arbitrary connected patterns — e.g.
// "an eastbound stretch, then a westbound detour" — are evaluated in PTIME
// via X-property homomorphism tests plus the β-acyclic interval lineage DP.
//
// Build & run:  ./build/examples/road_corridor

#include <iostream>

#include "src/core/phom.h"

int main() {
  using namespace phom;
  Alphabet kinds;
  LabelId highway = kinds.Intern("highway");
  LabelId local = kinds.Intern("local");

  // A corridor of 300 segments; orientation alternates in blocks, roughly
  // 1 in 6 segments is a fragile "local" road with lower availability.
  Rng rng(42);
  std::vector<TwoWayStep> steps;
  bool direction = true;
  for (int i = 0; i < 300; ++i) {
    if (rng.Bernoulli(0.25)) direction = !direction;
    bool is_local = rng.UniformInt(0, 5) == 0;
    steps.push_back(TwoWayStep{is_local ? local : highway, direction});
  }
  DiGraph corridor_graph = MakeTwoWayPath(steps);
  std::vector<Rational> availability;
  for (const TwoWayStep& s : steps) {
    availability.push_back(s.label == local ? Rational(3, 4)
                                            : Rational(15, 16));
  }
  ProbGraph corridor(corridor_graph, availability);
  std::cout << "Corridor: " << corridor.num_edges() << " segments ("
            << TableClassLabel(Classify(corridor.graph())) << " instance)\n\n";

  Solver solver;
  auto ask = [&](const DiGraph& query, const std::string& name) {
    Result<SolveResult> r = solver.Solve(query, corridor);
    PHOM_CHECK_MSG(r.ok(), r.status().ToString());
    std::cout << name << "\n  cell " << r->analysis.cell << "  ["
              << r->analysis.proposition << "]  Pr = "
              << r->probability.ToDecimalString(6)
              << "  (minimal matches tried: " << r->stats.hom_tests
              << " hom tests)\n";
  };

  // Pattern 1: four consecutive open highway segments, same direction.
  ask(MakeLabeledPath({highway, highway, highway, highway}),
      "4 consecutive same-direction highway segments");

  // Pattern 2: an eastbound segment directly against a westbound one (a
  // "meeting point"): -> <-.
  ask(MakeTwoWayPath({{highway, true}, {highway, false}}),
      "head-on meeting of two highway segments");

  // Pattern 3: local detour sandwiched between highway stretches.
  ask(MakeLabeledPath({highway, local, highway}),
      "highway-local-highway chain");

  // Pattern 4: a branching query (DWT shape) still fine on path instances.
  DiGraph branching(4);
  AddEdgeOrDie(&branching, 0, 1, highway);
  AddEdgeOrDie(&branching, 0, 2, highway);
  AddEdgeOrDie(&branching, 1, 3, local);
  ask(branching, "branching pattern (collapses onto the corridor)");
  return 0;
}
