// Quickstart: the paper's running example (Figure 1, Examples 2.1-2.2).
//
// We build the probabilistic graph H over labels {R, S}, ask for the
// probability that the query graph  x -R-> y -S-> z <-S- t  has a
// homomorphism to a possible world of H, and print the exact answer
// (287/500 = 0.574) along with what the dichotomy dispatcher decided.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "src/core/phom.h"

int main() {
  using namespace phom;

  Alphabet alphabet;
  LabelId R = alphabet.Intern("R");
  LabelId S = alphabet.Intern("S");

  // The query ∃xyzt R(x,y) ∧ S(y,z) ∧ S(t,z) as a graph: x=0 y=1 z=2 t=3.
  DiGraph query(4);
  AddEdgeOrDie(&query, 0, 1, R);
  AddEdgeOrDie(&query, 1, 2, S);
  AddEdgeOrDie(&query, 3, 2, S);

  // A 4-vertex probabilistic instance in the spirit of Figure 1: six edges,
  // each carrying a label and a probability.
  ProbGraph instance(4);  // a=0 b=1 c=2 d=3
  AddEdgeOrDie(&instance, 0, 1, R, *Rational::FromString("0.1"));
  AddEdgeOrDie(&instance, 3, 1, R, *Rational::FromString("0.8"));
  AddEdgeOrDie(&instance, 1, 2, S, *Rational::FromString("0.7"));
  AddEdgeOrDie(&instance, 0, 3, R, Rational::One());
  AddEdgeOrDie(&instance, 2, 3, R, *Rational::FromString("0.05"));
  AddEdgeOrDie(&instance, 2, 0, S, *Rational::FromString("0.1"));

  std::cout << "Instance (DOT):\n" << ToDot(instance, &alphabet) << "\n";

  Solver solver;
  Result<SolveResult> result = solver.Solve(query, instance);
  if (!result.ok()) {
    std::cerr << "solve failed: " << result.status().ToString() << "\n";
    return 1;
  }

  const SolveResult& r = *result;
  std::cout << "Cell:        " << r.analysis.cell << "\n";
  std::cout << "Verdict:     "
            << (r.analysis.tractable ? "PTIME" : "#P-hard (exact fallback)")
            << "  [" << r.analysis.proposition << "]\n";
  std::cout << "Algorithm:   " << ToString(r.analysis.algorithm) << "\n";
  std::cout << "Pr(G => H) = " << r.probability.ToString() << " = "
            << r.probability.ToDecimalString(4) << "\n";

  // The paper computes 0.7 * (1 - (1-0.1)(1-0.8)) = 0.574.
  PHOM_CHECK(r.probability == Rational(287, 500));
  std::cout << "\nMatches Example 2.2's closed form 0.7*(1-0.9*0.2) = 0.574\n";
  return 0;
}
