// A small command-line front end: evaluate a conjunctive query against a
// probabilistic instance file.
//
//   phom_cli '<query>' <instance-file>
//   phom_cli 'R(x,y), S(y,z), S(t,z)' my_instance.txt
//
// The instance file uses the text format of src/graph/io.h:
//   <num_vertices> <num_edges>
//   <src> <dst> <label-name> [<probability>]
// With no arguments, runs a built-in demo (the paper's running example).

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/monte_carlo.h"
#include "src/core/phom.h"
#include "src/graph/cq_parser.h"

namespace {

int Run(const std::string& query_text, const std::string& instance_text) {
  using namespace phom;
  Alphabet alphabet;
  Result<ProbGraph> instance = ParseProbGraph(instance_text, &alphabet);
  if (!instance.ok()) {
    std::cerr << "instance: " << instance.status().ToString() << "\n";
    return 1;
  }
  Result<ParsedQuery> query = ParseConjunctiveQuery(query_text, &alphabet);
  if (!query.ok()) {
    std::cerr << "query: " << query.status().ToString() << "\n";
    return 1;
  }

  std::cout << "query:      "
            << FormatConjunctiveQuery(query->graph, alphabet,
                                      &query->variables)
            << "\n";
  std::cout << "instance:   " << instance->num_vertices() << " vertices, "
            << instance->num_edges() << " edges ("
            << instance->NumUncertainEdges() << " uncertain)\n";

  Solver solver;
  Result<SolveResult> result = solver.Solve(query->graph, *instance);
  if (!result.ok()) {
    std::cerr << "solve: " << result.status().ToString() << "\n";
    // Offer a Monte Carlo estimate when the exact fallback is out of reach.
    Result<MonteCarloEstimate> estimate =
        EstimateProbabilityMonteCarlo(query->graph, *instance, /*seed=*/1);
    if (estimate.ok()) {
      std::cout << "Monte Carlo estimate: " << estimate->estimate << " ± "
                << estimate->half_width_95 << " (95%)\n";
    }
    return 2;
  }
  std::cout << "cell:       " << result->analysis.cell << "\n";
  std::cout << "verdict:    "
            << (result->analysis.tractable ? "PTIME" : "#P-hard cell")
            << " [" << result->analysis.proposition << "]\n";
  std::cout << "algorithm:  " << ToString(result->analysis.algorithm) << "\n";
  std::cout << "Pr(G => H) = " << result->probability.ToString() << " ≈ "
            << result->probability.ToDecimalString(6) << "\n";
  return 0;
}

constexpr const char* kDemoInstance =
    "4 6\n"
    "0 1 R 0.1\n"
    "3 1 R 0.8\n"
    "1 2 S 0.7\n"
    "0 3 R 1\n"
    "2 3 R 0.05\n"
    "2 0 S 0.1\n";

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) {
    std::cout << "(demo: the paper's running example)\n";
    return Run("R(x,y), S(y,z), S(t,z)", kDemoInstance);
  }
  if (argc != 3) {
    std::cerr << "usage: " << argv[0] << " '<query>' <instance-file>\n";
    return 64;
  }
  std::ifstream file(argv[2]);
  if (!file) {
    std::cerr << "cannot open " << argv[2] << "\n";
    return 66;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return Run(argv[1], buffer.str());
}
