// Unlabeled polytree instances (Props. 5.4/5.5): a river network is a
// polytree — tributaries merge and split, edges are directed by flow — and
// each reach is passable with some probability (seasonal water levels).
// "Is there a navigable downstream run of k consecutive reaches?" is the
// 1WP query →^k, answered in PTIME by compiling the ⟨↑, ↓, Max⟩ tree
// automaton into a d-DNNF provenance circuit.
//
// Build & run:  ./build/examples/river_network

#include <iostream>

#include "src/core/phom.h"

int main() {
  using namespace phom;

  // A random 1500-reach river network; most reaches are reliable, a few are
  // seasonal.
  Rng rng(7);
  DiGraph shape = RandomPolytree(&rng, 1500, 1);
  std::vector<Rational> passable;
  for (size_t e = 0; e < shape.num_edges(); ++e) {
    passable.push_back(rng.Bernoulli(0.2) ? Rational(1, 2)
                                          : Rational(9, 10));
  }
  ProbGraph river(shape, passable);
  std::cout << "River network: " << river.num_vertices() << " junctions, "
            << TableClassLabel(Classify(river.graph())) << " instance\n\n";

  Solver solver;
  for (size_t k : {1, 2, 4, 8, 16}) {
    DiGraph query = MakeOneWayPath(k);
    Result<SolveResult> r = solver.Solve(query, river);
    PHOM_CHECK_MSG(r.ok(), r.status().ToString());
    std::cout << "navigable run of " << k << " reaches: Pr = "
              << r->probability.ToDecimalString(6) << "   ["
              << r->analysis.proposition
              << ", circuit gates: " << r->stats.circuit_gates << "]\n";
  }

  // A branching "expedition plan" (DWT query) collapses to its height
  // (Prop. 5.5): planning two sub-routes below a base camp needs nothing
  // more than the longest one.
  DiGraph plan = MakeDownwardTree({0, 1, 2, 0, 4});  // two branches, heights 3 and 2
  Result<SolveResult> r = solver.Solve(plan, river);
  PHOM_CHECK_MSG(r.ok(), r.status().ToString());
  std::cout << "\nbranching plan of height 3: Pr = "
            << r->probability.ToDecimalString(6)
            << "  (query collapsed: "
            << (r->analysis.query_collapsed ? "yes" : "no") << ", m = "
            << r->analysis.collapsed_length << ")\n";
  return 0;
}
