// Probabilistic XML-style scenario (the setting the paper's conclusion calls
// the richest tractable case, Prop. 4.10): the instance is a labeled
// downward tree — think of an XML document whose elements were extracted by
// an uncertain information-extraction pipeline — and queries are label
// paths ("catalog/product/offer/price") evaluated in PTIME with exact
// probabilities.
//
// Build & run:  ./build/examples/prob_xml_paths

#include <iostream>

#include "src/core/path_pattern.h"
#include "src/core/phom.h"

int main() {
  using namespace phom;
  Alphabet tags;
  LabelId product = tags.Intern("product");
  LabelId offer = tags.Intern("offer");
  LabelId price = tags.Intern("price");
  LabelId review = tags.Intern("review");

  // A synthetic "document": a root catalog with products; each product has
  // uncertain offers (the extractor is 80% sure), offers have prices
  // (95% sure), products have reviews (50% sure).
  Rng rng(2017);
  ProbGraph doc(1);  // vertex 0 = catalog root
  size_t num_products = 40;
  for (size_t p = 0; p < num_products; ++p) {
    VertexId vp = doc.AddVertex();
    AddEdgeOrDie(&doc, 0, vp, product, Rational::One());
    size_t offers = 1 + rng.UniformInt(0, 2);
    for (size_t o = 0; o < offers; ++o) {
      VertexId vo = doc.AddVertex();
      AddEdgeOrDie(&doc, vp, vo, offer, Rational(4, 5));
      VertexId vpr = doc.AddVertex();
      AddEdgeOrDie(&doc, vo, vpr, price, Rational(19, 20));
    }
    if (rng.Bernoulli(0.5)) {
      VertexId vr = doc.AddVertex();
      AddEdgeOrDie(&doc, vp, vr, review, Rational::Half());
    }
  }
  std::cout << "Document tree: " << doc.num_vertices() << " nodes, "
            << doc.num_edges() << " edges, "
            << doc.NumUncertainEdges() << " uncertain\n\n";

  Solver solver;
  auto ask = [&](const std::vector<LabelId>& path_labels,
                 const std::string& name) {
    DiGraph query = MakeLabeledPath(path_labels);
    Result<SolveResult> r = solver.Solve(query, doc);
    PHOM_CHECK_MSG(r.ok(), r.status().ToString());
    std::cout << name << "\n  cell " << r->analysis.cell << "  ["
              << r->analysis.proposition << "]  Pr = "
              << r->probability.ToDecimalString(6) << "\n";
  };

  ask({product}, "//product");
  ask({product, offer}, "//product/offer");
  ask({product, offer, price}, "//product/offer/price");
  ask({product, review}, "//product/review");
  ask({offer, review}, "//offer/review (never matches)");

  // Descendant axis (the paper's §6 future-work extension, implemented in
  // path_pattern.h): product//price skips the offer level.
  PathPattern product_desc_price;
  product_desc_price.steps = {{product, false}, {price, true}};
  PathPatternStats stats;
  Result<Rational> p =
      SolvePathPatternOnDwtForest(product_desc_price, doc, {}, &stats);
  PHOM_CHECK_MSG(p.ok(), p.status().ToString());
  std::cout << "\n//product//price (descendant axis)\n  Pr = "
            << p->ToDecimalString(6) << "  [suffix-run DFA: "
            << stats.dfa_states << " states]\n";
  return 0;
}
